open Mclh_circuit

let per_row (design : Design.t) ~rows =
  let num_rows = design.chip.Chip.num_rows in
  let buckets = Array.make num_rows [] in
  Array.iteri
    (fun i row ->
      let h = design.cells.(i).Cell.height in
      for r = row to row + h - 1 do
        buckets.(r) <- i :: buckets.(r)
      done)
    rows;
  let xs = design.global.Placement.xs in
  Array.map
    (fun ids ->
      ids
      |> List.sort (fun a b ->
             let c = compare xs.(a) xs.(b) in
             if c <> 0 then c else compare a b)
      |> Array.of_list)
    buckets

let preservation (design : Design.t) (final : Placement.t) =
  let num_rows = design.chip.Chip.num_rows in
  let buckets = Array.make num_rows [] in
  Array.iteri
    (fun i (c : Cell.t) ->
      let row = int_of_float (Float.round final.Placement.ys.(i)) in
      for r = max 0 row to min (num_rows - 1) (row + c.Cell.height - 1) do
        buckets.(r) <- i :: buckets.(r)
      done)
    design.cells;
  let gxs = design.global.Placement.xs in
  let preserved = ref 0 and total = ref 0 in
  Array.iter
    (fun ids ->
      let sorted =
        List.sort (fun a b -> compare final.Placement.xs.(a) final.Placement.xs.(b)) ids
      in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          incr total;
          if gxs.(a) <= gxs.(b) then incr preserved;
          pairs rest
        | [ _ ] | [] -> ()
      in
      pairs sorted)
    buckets;
  if !total = 0 then 1.0 else float_of_int !preserved /. float_of_int !total
