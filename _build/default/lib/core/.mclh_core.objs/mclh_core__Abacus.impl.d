lib/core/abacus.ml: Array Cell Chip Design Float List Mclh_circuit Order Placement Row_assign
