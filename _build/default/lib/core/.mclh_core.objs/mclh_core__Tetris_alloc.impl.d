lib/core/tetris_alloc.ml: Array Cell Chip Design Float List Mclh_circuit Occupancy Placement Printf
