lib/core/segments.mli: Design Mclh_circuit
