lib/core/greedy_cpy.ml: Array Cell Chip Design Float Mclh_circuit Occupancy Placement
