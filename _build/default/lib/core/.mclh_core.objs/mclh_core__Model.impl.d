lib/core/model.ml: Array Blocks Cell Coo Csr Design Float Hashtbl List Mclh_circuit Mclh_linalg Mclh_qp Order Placement Row_assign Segments Vec
