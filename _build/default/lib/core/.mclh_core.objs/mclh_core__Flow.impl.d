lib/core/flow.ml: Config Design Logs Mclh_circuit Mclh_linalg Model Placement Row_assign Solver Sys Tetris_alloc
