lib/core/warm_start.mli: Config Mclh_lcp Mclh_linalg Model Vec
