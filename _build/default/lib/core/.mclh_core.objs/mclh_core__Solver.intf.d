lib/core/solver.mli: Config Mclh_lcp Mclh_linalg Model Vec
