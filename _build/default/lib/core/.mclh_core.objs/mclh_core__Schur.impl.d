lib/core/schur.ml: Array Blocks Csr Dense List Mclh_linalg Model Tridiag
