lib/core/abacus.mli: Design Mclh_circuit Placement Row_assign
