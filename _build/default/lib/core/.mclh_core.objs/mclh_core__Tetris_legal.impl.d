lib/core/tetris_legal.ml: Array Blockage Cell Chip Design Float Greedy_cpy List Mclh_circuit Placement
