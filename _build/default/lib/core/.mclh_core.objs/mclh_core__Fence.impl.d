lib/core/fence.ml: Array Cell Design Flow List Mclh_circuit Netlist Placement Region Solver
