lib/core/fence.mli: Config Design Mclh_circuit Placement
