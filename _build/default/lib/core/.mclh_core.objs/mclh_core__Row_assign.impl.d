lib/core/row_assign.ml: Array Chip Design Float Mclh_circuit Placement Printf
