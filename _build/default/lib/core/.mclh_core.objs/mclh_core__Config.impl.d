lib/core/config.ml:
