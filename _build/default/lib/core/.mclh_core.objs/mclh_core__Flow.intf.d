lib/core/flow.mli: Config Design Mclh_circuit Model Placement Solver Tetris_alloc
