lib/core/order.ml: Array Cell Chip Design Float List Mclh_circuit Placement
