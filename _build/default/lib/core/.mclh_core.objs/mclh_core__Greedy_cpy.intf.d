lib/core/greedy_cpy.mli: Design Mclh_circuit Placement
