lib/core/segments.ml: Array Blockage Chip Design List Mclh_circuit
