lib/core/tetris_legal.mli: Design Mclh_circuit Placement
