lib/core/order.mli: Design Mclh_circuit Placement
