lib/core/runner.mli: Config Design Flow Mclh_circuit Metrics Placement
