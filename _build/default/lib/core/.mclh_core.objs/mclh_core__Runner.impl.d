lib/core/runner.ml: Abacus_mr Array Chip Design Fence Flow Greedy_cpy Hpwl Legality List Mclh_circuit Metrics Placement Sys Tetris_alloc Tetris_legal
