lib/core/abacus_mr.ml: Array Blockage Cell Chip Design Float Hashtbl List Mclh_circuit Placement
