lib/core/solver.ml: Array Blocks Config Csr Eig Float Mclh_lcp Mclh_linalg Mclh_qp Model Schur Tridiag Vec Warm_start
