lib/core/warm_start.ml: Abacus Array Blocks Config Float List Mclh_lcp Mclh_linalg Model Vec
