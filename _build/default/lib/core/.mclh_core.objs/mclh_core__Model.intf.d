lib/core/model.mli: Blocks Csr Design Mclh_circuit Mclh_linalg Mclh_qp Placement Row_assign Vec
