lib/core/schur.mli: Dense Mclh_linalg Model Tridiag
