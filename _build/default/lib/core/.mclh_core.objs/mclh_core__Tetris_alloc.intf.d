lib/core/tetris_alloc.mli: Design Mclh_circuit Placement
