lib/core/config.mli:
