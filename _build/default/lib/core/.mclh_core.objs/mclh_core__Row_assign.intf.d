lib/core/row_assign.mli: Design Mclh_circuit
