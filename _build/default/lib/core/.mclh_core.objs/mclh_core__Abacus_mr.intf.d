lib/core/abacus_mr.mli: Design Mclh_circuit Placement
