open Mclh_linalg

(* The per-group "widths" fed to PlaceRow are the required separations of
   Model.b_rhs (the left cell's width, corrected by the blockage-segment
   shift difference). A separation can degenerate to <= 0 when shifts
   differ wildly; clamp — it only blunts the warm start, never correctness. *)
let separations (model : Model.t) vars ~base =
  let k = Array.length vars in
  Array.init k (fun idx ->
      if idx < k - 1 then Float.max 1e-6 model.b_rhs.(base + idx)
      else 1.0)

let positions (model : Model.t) =
  let x0 = Array.make model.nvars 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      if Array.length vars > 0 then begin
        let base = !ci in
        ci := !ci + (Array.length vars - 1);
        let seps = separations model vars ~base in
        let cells =
          Array.to_list
            (Array.mapi
               (fun idx v ->
                 { Abacus.id = v; target = -.model.p.(v); width = seps.(idx) })
               vars)
        in
        List.iter (fun (v, x) -> x0.(v) <- x) (Abacus.place_row cells)
      end)
    model.row_vars;
  (* the per-row solves give a multi-row cell different positions in each
     row; averaging restores E x_0 = 0 exactly, so the (large) lambda
     penalty contributes no residual at the start. The small ordering
     violations the averaging may introduce are local and cheap for the
     MMSIM to repair — unlike a lambda-sized chain residual. *)
  Blocks.average_into model.blocks x0;
  x0

let multipliers (model : Model.t) x0 =
  let m = Model.num_constraints model in
  let r0 = Array.make m 0.0 in
  (* constraint indices follow Model.build: row by row, left to right *)
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      let k = Array.length vars in
      if k > 1 then begin
        let base = !ci in
        ci := !ci + (k - 1);
        (* stationarity at interior vars: r_left = (u - u') + r_right;
           a slack constraint carries no force *)
        let r_right = ref 0.0 in
        for idx = k - 1 downto 1 do
          let v = vars.(idx) and u = vars.(idx - 1) in
          let slack = x0.(v) -. x0.(u) -. model.b_rhs.(base + idx - 1) in
          let r =
            if slack > 1e-9 then 0.0
            else Float.max 0.0 (x0.(v) +. model.p.(v) +. !r_right)
          in
          r0.(base + idx - 1) <- r;
          r_right := r
        done
      end)
    model.row_vars;
  assert (!ci = m);
  r0

let modulus_vector (model : Model.t) (config : Config.t) ops =
  let n = model.nvars and m = Model.num_constraints model in
  let x0 = positions model in
  let r0 = multipliers model x0 in
  let z0 = Array.append x0 r0 in
  (* w_0 = A z_0 + q; keeping only its positive part preserves z where
     complementarity is slightly violated at the warm start *)
  let w0 = Vec.zeros (n + m) in
  ops.Mclh_lcp.Mmsim.apply_a_into z0 w0;
  let q = Model.lcp_rhs model in
  let gamma = config.Config.gamma in
  Vec.init (n + m) (fun i ->
      gamma /. 2.0 *. (z0.(i) -. Float.max 0.0 (w0.(i) +. q.(i))))
