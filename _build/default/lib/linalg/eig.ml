type result = { value : float; iterations : int; converged : bool }

(* deterministic pseudo-random start vector; quality does not matter much,
   it only needs a component along the dominant eigenvector *)
let start_vector seed dim =
  let state = ref (Int64.of_int (seed lxor 0x9e3779b9)) in
  Vec.init dim (fun _ ->
      state := Int64.mul 6364136223846793005L (Int64.add !state 1442695040888963407L);
      let bits = Int64.to_int (Int64.shift_right_logical !state 17) land 0xFFFFFF in
      (float_of_int bits /. float_of_int 0xFFFFFF) -. 0.5)

let power_iteration ?(max_iter = 200) ?(tol = 1e-8) ?(seed = 1) ~dim apply =
  if dim <= 0 then invalid_arg "Eig.power_iteration: dim must be positive";
  let v = ref (start_vector seed dim) in
  let normalize x =
    let n = Vec.norm2 x in
    if n > 0.0 then Vec.scale (1.0 /. n) x else x
  in
  v := normalize !v;
  let prev = ref infinity in
  let rec go k =
    if k >= max_iter then { value = !prev; iterations = k; converged = false }
    else begin
      let w = apply !v in
      let rayleigh = Vec.dot !v w in
      let nw = Vec.norm2 w in
      if nw = 0.0 then { value = 0.0; iterations = k + 1; converged = true }
      else begin
        v := Vec.scale (1.0 /. nw) w;
        let delta = Float.abs (rayleigh -. !prev) in
        let scale_ref = Float.max 1.0 (Float.abs rayleigh) in
        prev := rayleigh;
        if delta <= tol *. scale_ref then
          { value = rayleigh; iterations = k + 1; converged = true }
        else go (k + 1)
      end
    end
  in
  go 0

let dominant_dense ?max_iter ?tol m =
  if Dense.rows m <> Dense.cols m then
    invalid_arg "Eig.dominant_dense: matrix not square";
  power_iteration ?max_iter ?tol ~dim:(Dense.rows m) (Dense.mul_vec m)
