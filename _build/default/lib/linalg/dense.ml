type t = { nrows : int; ncols : int; data : float array }

let create nrows ncols = { nrows; ncols; data = Array.make (nrows * ncols) 0.0 }

let init nrows ncols f =
  let data = Array.make (nrows * ncols) 0.0 in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      data.((i * ncols) + j) <- f i j
    done
  done;
  { nrows; ncols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays rows_arr =
  let nrows = Array.length rows_arr in
  if nrows = 0 then { nrows = 0; ncols = 0; data = [||] }
  else begin
    let ncols = Array.length rows_arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> ncols then
          invalid_arg "Dense.of_arrays: ragged rows")
      rows_arr;
    init nrows ncols (fun i j -> rows_arr.(i).(j))
  end

let rows m = m.nrows
let cols m = m.ncols
let get m i j = m.data.((i * m.ncols) + j)
let set m i j v = m.data.((i * m.ncols) + j) <- v

let to_arrays m =
  Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }
let transpose m = init m.ncols m.nrows (fun i j -> get m j i)

let check_same name a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg ("Dense." ^ name ^ ": shape mismatch")

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun i v -> v +. b.data.(i)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun i v -> v -. b.data.(i)) a.data }

let scale c a = { a with data = Array.map (fun v -> c *. v) a.data }

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Dense.mul: inner dimension mismatch";
  init a.nrows b.ncols (fun i j ->
      let acc = ref 0.0 in
      for k = 0 to a.ncols - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      !acc)

let mul_vec a x =
  if a.ncols <> Array.length x then invalid_arg "Dense.mul_vec: dimension";
  Array.init a.nrows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.ncols - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let mul_vec_t a x =
  if a.nrows <> Array.length x then invalid_arg "Dense.mul_vec_t: dimension";
  Array.init a.ncols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to a.nrows - 1 do
        acc := !acc +. (get a i j *. x.(i))
      done;
      !acc)

let gram a = mul (transpose a) a
let outer_gram a = mul a (transpose a)
let row m i = Array.init m.ncols (fun j -> get m i j)
let col m j = Array.init m.nrows (fun i -> get m i j)

let is_symmetric ?(eps = 1e-12) m =
  m.nrows = m.ncols
  &&
  let ok = ref true in
  for i = 0 to m.nrows - 1 do
    for j = i + 1 to m.ncols - 1 do
      if Float.abs (get m i j -. get m j i) > eps then ok := false
    done
  done;
  !ok

let equal ?(eps = 1e-12) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  &&
  let rec go i =
    i >= Array.length a.data
    || (Float.abs (a.data.(i) -. b.data.(i)) <= eps && go (i + 1))
  in
  go 0

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to m.nrows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "@[<hov 1>[";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "]@]"
  done;
  Format.fprintf ppf "@]"
