type t = {
  nrows : int;
  ncols : int;
  mutable entries : (int * int * float) list;
  mutable count : int;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { nrows = rows; ncols = cols; entries = []; count = 0 }

let rows t = t.nrows
let cols t = t.ncols

let add t i j v =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg
      (Printf.sprintf "Coo.add: index (%d, %d) out of %dx%d" i j t.nrows
         t.ncols);
  t.entries <- (i, j, v) :: t.entries;
  t.count <- t.count + 1

let nnz t = t.count

let to_csr ?(drop_zeros = true) t =
  (* bucket triplets per row, then sort each row by column and merge dups *)
  let per_row = Array.make t.nrows [] in
  List.iter (fun (i, j, v) -> per_row.(i) <- (j, v) :: per_row.(i)) t.entries;
  let merged_rows =
    Array.map
      (fun entries ->
        let sorted =
          List.sort (fun (j1, _) (j2, _) -> compare j1 j2) entries
        in
        let rec merge = function
          | (j1, v1) :: (j2, v2) :: rest when j1 = j2 ->
            merge ((j1, v1 +. v2) :: rest)
          | e :: rest -> e :: merge rest
          | [] -> []
        in
        let merged = merge sorted in
        if drop_zeros then List.filter (fun (_, v) -> v <> 0.0) merged
        else merged)
      per_row
  in
  let total = Array.fold_left (fun acc r -> acc + List.length r) 0 merged_rows in
  let row_ptr = Array.make (t.nrows + 1) 0 in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0.0 in
  let pos = ref 0 in
  Array.iteri
    (fun i row ->
      row_ptr.(i) <- !pos;
      List.iter
        (fun (j, v) ->
          col_idx.(!pos) <- j;
          values.(!pos) <- v;
          incr pos)
        row)
    merged_rows;
  row_ptr.(t.nrows) <- !pos;
  Csr.make ~rows:t.nrows ~cols:t.ncols ~row_ptr ~col_idx ~values

let of_dense ?(eps = 0.0) d =
  let t = create ~rows:(Dense.rows d) ~cols:(Dense.cols d) in
  for i = 0 to Dense.rows d - 1 do
    for j = 0 to Dense.cols d - 1 do
      let v = Dense.get d i j in
      if Float.abs v > eps || (eps = 0.0 && v <> 0.0) then add t i j v
    done
  done;
  t
