type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.0
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let blit ~src ~dst =
  check_dims "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let fill x v = Array.fill x 0 (Array.length x) v

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let abs x = Array.map Float.abs x

let abs_into x dst =
  check_dims "abs_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- Float.abs x.(i)
  done

let pos_part x = Array.map (fun v -> Float.max v 0.0) x
let neg_part x = Array.map (fun v -> Float.max (-.v) 0.0) x
let norm2 x = sqrt (dot x x)

let norm_inf x =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs x.(i) in
    if a > !acc then acc := a
  done;
  !acc

let dist_inf x y =
  check_dims "dist_inf" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs (x.(i) -. y.(i)) in
    if a > !acc then acc := a
  done;
  !acc

let extremum name cmp x =
  if Array.length x = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let acc = ref x.(0) in
  for i = 1 to Array.length x - 1 do
    if cmp x.(i) !acc then acc := x.(i)
  done;
  !acc

let min_elt x = extremum "min_elt" ( < ) x
let max_elt x = extremum "max_elt" ( > ) x
let map = Array.map
let mapi = Array.mapi
let iteri = Array.iteri
let fold_left = Array.fold_left
let sum x = fold_left ( +. ) 0.0 x
let of_list = Array.of_list
let to_list = Array.to_list

let equal ?(eps = 1e-12) x y =
  Array.length x = Array.length y
  &&
  let rec go i =
    i >= Array.length x
    || (Float.abs (x.(i) -. y.(i)) <= eps && go (i + 1))
  in
  go 0

let pp ppf x =
  Format.fprintf ppf "@[<hov 1>[";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" v)
    x;
  Format.fprintf ppf "]@]"
