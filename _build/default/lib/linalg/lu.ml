type t = {
  lu : Dense.t; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation: row i of PA is row perm.(i) of A *)
  sign : float; (* permutation parity, for det *)
}

exception Singular of int

let factorize ?tol a =
  let n = Dense.rows a in
  if Dense.cols a <> n then invalid_arg "Lu.factorize: matrix not square";
  let lu = Dense.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let max_abs = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      max_abs := Float.max !max_abs (Float.abs (Dense.get lu i j))
    done
  done;
  let tol =
    match tol with Some t -> t | None -> 1e-12 *. Float.max 1.0 !max_abs
  in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest |entry| of column k to the top *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Dense.get lu i k) > Float.abs (Dense.get lu !pivot_row k)
      then pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Dense.get lu k j in
        Dense.set lu k j (Dense.get lu !pivot_row j);
        Dense.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Dense.get lu k k in
    if Float.abs pivot <= tol then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Dense.get lu i k /. pivot in
      Dense.set lu i k factor;
      for j = k + 1 to n - 1 do
        Dense.set lu i j (Dense.get lu i j -. (factor *. Dense.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve { lu; perm; _ } b =
  let n = Dense.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-diagonal L *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Dense.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Dense.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Dense.get lu i i
  done;
  x

let solve_matrix fact b =
  let n = Dense.rows b and m = Dense.cols b in
  let out = Dense.create n m in
  for j = 0 to m - 1 do
    let x = solve fact (Dense.col b j) in
    Array.iteri (fun i v -> Dense.set out i j v) x
  done;
  out

let det { lu; sign; _ } =
  let n = Dense.rows lu in
  let acc = ref sign in
  for i = 0 to n - 1 do
    acc := !acc *. Dense.get lu i i
  done;
  !acc

let inverse fact = solve_matrix fact (Dense.identity (Dense.rows fact.lu))
let solve_system ?tol a b = solve (factorize ?tol a) b
