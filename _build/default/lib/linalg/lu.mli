(** Dense LU factorization with partial pivoting.

    Reference solver for small systems: the active-set QP oracle and the
    exact (non-tridiagonal) Schur-complement checks in tests. *)

type t
(** A factorization [P A = L U] of a square matrix. *)

exception Singular of int
(** Raised with the pivot column index when the matrix is numerically
    singular (pivot magnitude below the factorization tolerance). *)

val factorize : ?tol:float -> Dense.t -> t
(** [factorize a] computes the factorization.
    @param tol pivot threshold below which the matrix is declared singular
      (default [1e-12] scaled by the largest absolute entry).
    @raise Invalid_argument if [a] is not square.
    @raise Singular if a pivot is too small. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b]. *)

val solve_matrix : t -> Dense.t -> Dense.t
(** [solve_matrix lu b] solves [A X = B] column by column. *)

val det : t -> float
(** Determinant of the factorized matrix. *)

val inverse : t -> Dense.t

val solve_system : ?tol:float -> Dense.t -> Vec.t -> Vec.t
(** One-shot [factorize] + [solve]. *)
