lib/linalg/coo.mli: Csr Dense
