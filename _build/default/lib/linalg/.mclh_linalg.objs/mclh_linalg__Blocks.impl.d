lib/linalg/blocks.ml: Array Coo Float Hashtbl List
