lib/linalg/eig.mli: Dense Vec
