lib/linalg/blocks.mli: Csr Vec
