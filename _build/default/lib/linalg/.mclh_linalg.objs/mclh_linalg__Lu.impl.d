lib/linalg/lu.ml: Array Dense Float
