lib/linalg/lu.mli: Dense Vec
