lib/linalg/tridiag.mli: Dense Vec
