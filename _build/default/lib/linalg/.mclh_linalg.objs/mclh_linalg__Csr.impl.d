lib/linalg/csr.ml: Array Dense
