lib/linalg/tridiag.ml: Array Dense Float
