lib/linalg/cg.ml: Array Float Vec
