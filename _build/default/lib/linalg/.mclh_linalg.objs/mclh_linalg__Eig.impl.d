lib/linalg/eig.ml: Dense Float Int64 Vec
