lib/linalg/coo.ml: Array Csr Dense Float List Printf
