lib/linalg/csr.mli: Dense Vec
