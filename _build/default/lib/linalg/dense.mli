(** Dense row-major matrices.

    Used for small reference computations: the active-set QP oracle, unit
    tests that compare the sparse kernels against a straightforward dense
    evaluation, and eigenvalue estimation on small instances. The production
    MMSIM path never materializes a dense matrix. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows. Raises [Invalid_argument] if the rows
    have uneven lengths. *)

val to_arrays : t -> float array array

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on inner-dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. *)

val mul_vec_t : t -> Vec.t -> Vec.t
(** [mul_vec_t a x] is [A^T x]. *)

val gram : t -> t
(** [gram a] is [A^T A]. *)

val outer_gram : t -> t
(** [outer_gram a] is [A A^T]. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val is_symmetric : ?eps:float -> t -> bool

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
