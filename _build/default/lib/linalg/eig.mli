(** Largest-eigenvalue estimation by power iteration.

    Used to check the MMSIM convergence bound of Theorem 2:
    [theta < 2 (2 - beta) / (beta mu_max)] where [mu_max] is the largest
    eigenvalue of [Gamma = D^-1 B Q~^-1 B^T]. The operator is supplied as a
    function, so the caller never materializes [Gamma]. *)

type result = {
  value : float;  (** estimated dominant eigenvalue (Rayleigh quotient) *)
  iterations : int;  (** iterations actually performed *)
  converged : bool;  (** whether the tolerance was met before [max_iter] *)
}

val power_iteration :
  ?max_iter:int ->
  ?tol:float ->
  ?seed:int ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  result
(** [power_iteration ~dim apply] estimates the dominant eigenvalue of the
    linear operator [apply] on R^dim. Defaults: [max_iter = 200],
    [tol = 1e-8] (relative change of the eigenvalue estimate), [seed = 1]
    for the deterministic start vector. For operators with a complex or
    negative dominant eigenvalue the estimate is the dominant eigenvalue of
    the symmetrized behaviour observed along the iteration; for the SPD-like
    operators used here it is the true [mu_max].
    @raise Invalid_argument if [dim <= 0]. *)

val dominant_dense : ?max_iter:int -> ?tol:float -> Dense.t -> result
(** Power iteration on a dense square matrix (test convenience). *)
