(** Dense vectors of floats.

    A thin layer over [float array] providing the operations the LCP/MMSIM
    solvers need: BLAS-1 style arithmetic, norms, and elementwise transforms.
    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val zeros : int -> t
(** [zeros n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t

val dim : t -> int

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst]. *)

val fill : t -> float -> unit

val add : t -> t -> t
(** [add x y] is the elementwise sum. *)

val sub : t -> t -> t
(** [sub x y] is the elementwise difference [x - y]. *)

val scale : float -> t -> t
(** [scale a x] is [a * x]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a * x + y] in place. *)

val dot : t -> t -> float
(** Euclidean inner product. *)

val abs : t -> t
(** Elementwise absolute value. *)

val abs_into : t -> t -> unit
(** [abs_into x dst] writes [|x|] elementwise into [dst]. *)

val pos_part : t -> t
(** [pos_part x] is elementwise [max x 0]. *)

val neg_part : t -> t
(** [neg_part x] is elementwise [max (-x) 0], so [x = pos_part x - neg_part x]. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max-norm; 0 for the empty vector. *)

val dist_inf : t -> t -> float
(** [dist_inf x y] is [norm_inf (sub x y)] without allocating. *)

val min_elt : t -> float
(** Smallest element. Raises [Invalid_argument] on the empty vector. *)

val max_elt : t -> float
(** Largest element. Raises [Invalid_argument] on the empty vector. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold_left : ('a -> float -> 'a) -> 'a -> t -> 'a

val sum : t -> float

val of_list : float list -> t

val to_list : t -> float list

val equal : ?eps:float -> t -> t -> bool
(** [equal ?eps x y] holds when dimensions match and every component differs
    by at most [eps] (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
