(** Coordinate-format (triplet) sparse matrix builder.

    Accumulates [(row, col, value)] entries in any order, with duplicates
    summed, and converts to {!Csr} for fast products. *)

type t

val create : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int

val add : t -> int -> int -> float -> unit
(** [add t i j v] accumulates [v] at position [(i, j)]. Raises
    [Invalid_argument] when the indices are out of bounds. Zero values are
    kept (they disappear on conversion only if they sum to zero and
    [drop_zeros] is requested). *)

val nnz : t -> int
(** Number of accumulated triplets (before duplicate merging). *)

val to_csr : ?drop_zeros:bool -> t -> Csr.t
(** Converts to CSR, merging duplicate entries by summation. With
    [drop_zeros] (default [true]), entries that sum to exactly 0.0 are
    removed. *)

val of_dense : ?eps:float -> Dense.t -> t
(** Triplets of all entries of magnitude above [eps] (default 0., i.e. all
    nonzero entries). *)
