(** Conjugate gradient for symmetric positive definite operators.

    Matrix-free: the operator is a function, so Laplacian-like systems
    from the quadratic global placer never materialize. Optional Jacobi
    preconditioning via the supplied diagonal. *)

type outcome = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  residual_norm : float;  (** final ||b - A x||_2 *)
}

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?x0:Vec.t ->
  ?jacobi:Vec.t ->
  dim:int ->
  (Vec.t -> Vec.t) ->
  b:Vec.t ->
  outcome
(** [solve ~dim apply ~b] solves [A x = b] for SPD [apply]. Defaults:
    [max_iter = 10 * dim + 100], [tol = 1e-8] (relative to [||b||]),
    [x0 = 0]. [jacobi], when given, must be the (positive) diagonal of A.
    @raise Invalid_argument on dimension mismatches or non-positive
      [jacobi] entries. *)
