type outcome = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  residual_norm : float;
}

let solve ?max_iter ?(tol = 1e-8) ?x0 ?jacobi ~dim apply ~b =
  if Vec.dim b <> dim then invalid_arg "Cg.solve: b dimension mismatch";
  let max_iter = match max_iter with Some v -> v | None -> (10 * dim) + 100 in
  let precond =
    match jacobi with
    | None -> fun r -> Vec.copy r
    | Some d ->
      if Vec.dim d <> dim then invalid_arg "Cg.solve: jacobi dimension";
      Array.iter
        (fun v -> if v <= 0.0 then invalid_arg "Cg.solve: jacobi not positive")
        d;
      fun r -> Vec.init dim (fun i -> r.(i) /. d.(i))
  in
  let x =
    match x0 with
    | None -> Vec.zeros dim
    | Some x0 ->
      if Vec.dim x0 <> dim then invalid_arg "Cg.solve: x0 dimension";
      Vec.copy x0
  in
  let r = Vec.sub b (apply x) in
  let z = precond r in
  let p = Vec.copy z in
  let rz = ref (Vec.dot r z) in
  let b_norm = Float.max (Vec.norm2 b) 1e-300 in
  let rec go k =
    let res = Vec.norm2 r in
    if res <= tol *. b_norm then
      { x; iterations = k; converged = true; residual_norm = res }
    else if k >= max_iter then
      { x; iterations = k; converged = false; residual_norm = res }
    else begin
      let ap = apply p in
      let p_ap = Vec.dot p ap in
      if p_ap <= 0.0 then
        (* loss of positive definiteness (numerical); stop with what we have *)
        { x; iterations = k; converged = false; residual_norm = res }
      else begin
        let alpha = !rz /. p_ap in
        Vec.axpy alpha p x;
        Vec.axpy (-.alpha) ap r;
        let z = precond r in
        let rz' = Vec.dot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to dim - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done;
        go (k + 1)
      end
    end
  in
  go 0
