open Mclh_linalg

let to_lcp (qp : Qp.t) =
  let n = Qp.num_vars qp and m = Qp.num_constraints qp in
  let coo = Coo.create ~rows:(n + m) ~cols:(n + m) in
  Csr.iter qp.q_mat (fun i j v -> Coo.add coo i j v);
  Csr.iter qp.b_mat (fun i j v ->
      (* -B^T in the top-right block, B in the bottom-left block *)
      Coo.add coo j (n + i) (-.v);
      Coo.add coo (n + i) j v);
  let a = Coo.to_csr coo in
  let q =
    Vec.init (n + m) (fun i ->
        if i < n then qp.p.(i) else -.qp.b_rhs.(i - n))
  in
  Mclh_lcp.Lcp.make a q

let split_solution (qp : Qp.t) z =
  let n = Qp.num_vars qp and m = Qp.num_constraints qp in
  if Vec.dim z <> n + m then invalid_arg "Kkt.split_solution: dimension";
  (Array.sub z 0 n, Array.sub z n m)

let kkt_residual (qp : Qp.t) ~x ~r =
  let u = Qp.gradient qp x in
  (* u = Qx + p - B^T r *)
  let btr = Csr.mul_vec_t qp.b_mat r in
  Vec.axpy (-1.0) btr u;
  let v = Csr.mul_vec qp.b_mat x in
  Vec.axpy (-1.0) qp.b_rhs v;
  let worst = ref 0.0 in
  let bump value = worst := Float.max !worst value in
  Array.iter (fun value -> bump (-.value)) u;
  Array.iter (fun value -> bump (-.value)) v;
  Array.iter (fun value -> bump (-.value)) x;
  Array.iter (fun value -> bump (-.value)) r;
  Array.iteri (fun i value -> bump (Float.abs (value *. v.(i)))) r;
  Array.iteri (fun i value -> bump (Float.abs (value *. x.(i)))) u;
  !worst
