(** KKT reformulation: convex QP -> LCP (Equations (7)-(8) / (14)-(15)).

    For the QP of {!Qp}, the KKT conditions are equivalent to LCP(q, A) with

    A = [ Q  -B^T ]      q = [ p  ]      z = [ x ]
        [ B   0   ]          [ -b ]          [ r ]

    where [r] are the multipliers of [B x >= b]. Theorem 1 of the paper:
    [x] solves the QP iff [(x, r)] solves the LCP. *)

open Mclh_linalg

val to_lcp : Qp.t -> Mclh_lcp.Lcp.problem
(** Assembles the explicit sparse KKT system matrix and right-hand side. *)

val split_solution : Qp.t -> Vec.t -> Vec.t * Vec.t
(** [split_solution qp z] splits an LCP solution [z] back into
    [(x, r)]. Raises [Invalid_argument] if [z] has the wrong length. *)

val kkt_residual : Qp.t -> x:Vec.t -> r:Vec.t -> float
(** Infinity norm of the stationarity/complementarity residual of (7):
    the largest violation among [u = Qx + p - B^T r >= 0], [v = Bx - b >= 0],
    [x, r >= 0], [r^T v = 0] and [u^T x = 0] (complementarity measured
    componentwise). *)
