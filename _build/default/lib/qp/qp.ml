open Mclh_linalg

type t = { q_mat : Csr.t; p : Vec.t; b_mat : Csr.t; b_rhs : Vec.t }

let make ~q_mat ~p ~b_mat ~b_rhs =
  let n = Vec.dim p in
  if Csr.rows q_mat <> n || Csr.cols q_mat <> n then
    invalid_arg "Qp.make: Q must be n x n";
  if Csr.cols b_mat <> n then invalid_arg "Qp.make: B column count mismatch";
  if Csr.rows b_mat <> Vec.dim b_rhs then
    invalid_arg "Qp.make: b dimension mismatch";
  { q_mat; p; b_mat; b_rhs }

let num_vars t = Vec.dim t.p
let num_constraints t = Csr.rows t.b_mat

let objective t x =
  let qx = Csr.mul_vec t.q_mat x in
  (0.5 *. Vec.dot x qx) +. Vec.dot t.p x

let gradient t x =
  let g = Csr.mul_vec t.q_mat x in
  Vec.axpy 1.0 t.p g;
  g

let constraint_violation t x =
  let bx = Csr.mul_vec t.b_mat x in
  let worst = ref 0.0 in
  for i = 0 to Vec.dim bx - 1 do
    worst := Float.max !worst (t.b_rhs.(i) -. bx.(i))
  done;
  for j = 0 to Vec.dim x - 1 do
    worst := Float.max !worst (-.x.(j))
  done;
  !worst

let is_feasible ?(eps = 1e-9) t x = constraint_violation t x <= eps
