open Mclh_linalg

type outcome = {
  x : Vec.t;
  multipliers : Vec.t;
  bound_multipliers : Vec.t;
  iterations : int;
  converged : bool;
}

(* Constraints are unified as G x >= h with the m rows of B first and the n
   bound rows x_j >= 0 after them. *)

let constraint_row (qp : Qp.t) i =
  if i < Qp.num_constraints qp then Csr.row_entries qp.b_mat i
  else [ (i - Qp.num_constraints qp, 1.0) ]
  [@@inline]

let constraint_rhs (qp : Qp.t) i =
  if i < Qp.num_constraints qp then qp.b_rhs.(i) else 0.0

let row_dot row x =
  List.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0.0 row

(* Solve the equality-constrained step: minimize (1/2) d^T Q d + g^T d with
   G_W d = 0. KKT: [Q -Gw^T; Gw 0] [d; lambda] = [-g; 0]. *)
let kkt_step (qp : Qp.t) working g =
  let n = Qp.num_vars qp in
  let k = List.length working in
  let dim = n + k in
  let mat = Dense.create dim dim in
  Csr.iter qp.q_mat (fun i j v -> Dense.set mat i j (Dense.get mat i j +. v));
  List.iteri
    (fun idx ci ->
      let row = constraint_row qp ci in
      List.iter
        (fun (j, v) ->
          Dense.set mat j (n + idx) (Dense.get mat j (n + idx) -. v);
          Dense.set mat (n + idx) j (Dense.get mat (n + idx) j +. v))
        row)
    working;
  let rhs = Vec.init dim (fun i -> if i < n then -.g.(i) else 0.0) in
  let sol = Lu.solve_system mat rhs in
  (Array.sub sol 0 n, Array.sub sol n k)

let solve ?max_iter ?(tol = 1e-9) ~x0 (qp : Qp.t) =
  let n = Qp.num_vars qp and m = Qp.num_constraints qp in
  if Vec.dim x0 <> n then invalid_arg "Active_set.solve: x0 dimension";
  if Qp.constraint_violation qp x0 > Float.max tol 1e-7 then
    invalid_arg "Active_set.solve: x0 infeasible";
  let max_iter =
    match max_iter with Some v -> v | None -> 100 * (n + m + 1)
  in
  let x = Vec.copy x0 in
  let num_total = m + n in
  let in_working = Array.make num_total false in
  (* start from the empty working set; blocking constraints join on demand *)
  let working = ref [] in
  let lambda_b = Vec.zeros m and lambda_x = Vec.zeros n in
  let record_multipliers lambdas =
    Vec.fill lambda_b 0.0;
    Vec.fill lambda_x 0.0;
    List.iteri
      (fun idx ci ->
        if ci < m then lambda_b.(ci) <- lambdas.(idx)
        else lambda_x.(ci - m) <- lambdas.(idx))
      !working
  in
  let rec go k =
    if k >= max_iter then
      { x; multipliers = lambda_b; bound_multipliers = lambda_x;
        iterations = k; converged = false }
    else begin
      let g = Qp.gradient qp x in
      match kkt_step qp !working g with
      | exception Lu.Singular _ ->
        (* dependent active set: drop the most recently added constraint *)
        begin match !working with
        | [] ->
          { x; multipliers = lambda_b; bound_multipliers = lambda_x;
            iterations = k; converged = false }
        | ci :: rest ->
          in_working.(ci) <- false;
          working := rest;
          go (k + 1)
        end
      | d, lambdas ->
        if Vec.norm_inf d <= tol then begin
          record_multipliers lambdas;
          (* optimal iff all working multipliers are nonnegative *)
          let most_negative = ref (-.tol) and drop = ref (-1) in
          List.iteri
            (fun idx ci ->
              if lambdas.(idx) < !most_negative then begin
                most_negative := lambdas.(idx);
                drop := ci
              end)
            !working;
          if !drop < 0 then
            { x; multipliers = lambda_b; bound_multipliers = lambda_x;
              iterations = k + 1; converged = true }
          else begin
            in_working.(!drop) <- false;
            working := List.filter (fun ci -> ci <> !drop) !working;
            go (k + 1)
          end
        end
        else begin
          (* ratio test against constraints leaving feasibility *)
          let alpha = ref 1.0 and blocking = ref (-1) in
          for ci = 0 to num_total - 1 do
            if not in_working.(ci) then begin
              let row = constraint_row qp ci in
              let gd = row_dot row d in
              if gd < -.tol then begin
                let slack = row_dot row x -. constraint_rhs qp ci in
                let step = slack /. -.gd in
                if step < !alpha then begin
                  alpha := Float.max step 0.0;
                  blocking := ci
                end
              end
            end
          done;
          Vec.axpy !alpha d x;
          if !blocking >= 0 then begin
            in_working.(!blocking) <- true;
            working := !blocking :: !working
          end;
          go (k + 1)
        end
    end
  in
  go 0

let feasible_start (qp : Qp.t) =
  let n = Qp.num_vars qp in
  (* constants satisfy bound constraints; ramps additionally satisfy
     difference constraints like the legalization orderings *)
  let ramp c = Vec.init n (fun j -> c *. float_of_int j) in
  let candidates =
    [ Vec.zeros n; Vec.create n 1.0; ramp 1.0; ramp 10.0; ramp 100.0 ]
  in
  List.find_opt (fun x -> Qp.is_feasible ~eps:1e-9 qp x) candidates
