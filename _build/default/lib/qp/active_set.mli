(** Dense primal active-set method for the convex QP of {!Qp}.

    An exact reference oracle for small instances (tens to a few hundred
    variables): tests compare the MMSIM solution of the converted LCP
    against this solver's optimum. It is deliberately simple and dense —
    never used on production-size problems. *)

open Mclh_linalg

type outcome = {
  x : Vec.t;  (** primal optimum *)
  multipliers : Vec.t;
      (** multipliers of [B x >= b] (length m), nonnegative at optimum *)
  bound_multipliers : Vec.t;
      (** multipliers of [x >= 0] (length n), nonnegative at optimum *)
  iterations : int;
  converged : bool;
}

val solve : ?max_iter:int -> ?tol:float -> x0:Vec.t -> Qp.t -> outcome
(** [solve ~x0 qp] runs the active-set method from the feasible point [x0].
    Defaults: [tol = 1e-9], [max_iter = 100 * (n + m + 1)].
    @raise Invalid_argument if [x0] is infeasible beyond [tol] or has the
      wrong dimension. *)

val feasible_start : Qp.t -> Vec.t option
(** A heuristic feasible point: tries the zero vector, constants and
    index ramps (which satisfy difference constraints); [None] if none is
    feasible (callers with problem structure should construct their
    own start). *)
