(** Primal-dual interior-point method for the convex QP of {!Qp}.

    An infeasible-start path-following method over the unified constraint
    system [G x >= h] (the [m] rows of [B] followed by the [n] bounds
    [x >= 0]). Each iteration eliminates the slack and multiplier blocks
    and solves the dense normal system
    [(Q + G^T D^-1 G) dx = rhs] by LU — O(n^3) per step, so this is a
    *reference* solver for small and medium instances.

    Unlike the active-set oracle it needs no feasible start, and unlike
    the MMSIM it follows the central path: three mutually independent
    solvers for the same problem class, cross-checked in the tests. *)

open Mclh_linalg

type options = {
  tol : float;  (** stop when duality measure and residuals are below *)
  max_iter : int;
  sigma : float;  (** centering parameter in (0, 1) *)
}

val default_options : options
(** [tol = 1e-9], [max_iter = 200], [sigma = 0.2]. *)

type outcome = {
  x : Vec.t;
  multipliers : Vec.t;  (** for [B x >= b] *)
  bound_multipliers : Vec.t;  (** for [x >= 0] *)
  iterations : int;
  converged : bool;
  duality_gap : float;  (** final complementarity measure mu *)
}

val solve : ?options:options -> Qp.t -> outcome
(** Runs the method from the all-ones interior start. *)
