lib/qp/qp.mli: Csr Mclh_linalg Vec
