lib/qp/kkt.ml: Array Coo Csr Float Mclh_lcp Mclh_linalg Qp Vec
