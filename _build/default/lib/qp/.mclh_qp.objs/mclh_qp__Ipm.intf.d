lib/qp/ipm.mli: Mclh_linalg Qp Vec
