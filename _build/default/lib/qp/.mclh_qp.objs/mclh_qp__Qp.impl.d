lib/qp/qp.ml: Array Csr Float Mclh_linalg Vec
