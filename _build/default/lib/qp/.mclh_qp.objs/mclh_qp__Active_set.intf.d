lib/qp/active_set.mli: Mclh_linalg Qp Vec
