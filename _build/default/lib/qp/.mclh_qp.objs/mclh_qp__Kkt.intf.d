lib/qp/kkt.mli: Mclh_lcp Mclh_linalg Qp Vec
