lib/qp/active_set.ml: Array Csr Dense Float List Lu Mclh_linalg Qp Vec
