lib/qp/ipm.ml: Array Csr Dense Float List Lu Mclh_linalg Qp Vec
