(** Convex quadratic programs of the legalization form.

    min (1/2) x^T Q x + p^T x
    s.t. B x >= b, x >= 0

    with [Q] symmetric positive definite. Problem (6) of the paper is this
    shape with [Q = I]; Problem (13) is the same with
    [Q = I + lambda E^T E]. *)

open Mclh_linalg

type t = {
  q_mat : Csr.t;  (** n x n, symmetric positive definite *)
  p : Vec.t;  (** linear term, length n *)
  b_mat : Csr.t;  (** m x n constraint matrix *)
  b_rhs : Vec.t;  (** right-hand side, length m *)
}

val make : q_mat:Csr.t -> p:Vec.t -> b_mat:Csr.t -> b_rhs:Vec.t -> t
(** Validates all dimensions; raises [Invalid_argument] on mismatch. *)

val num_vars : t -> int
val num_constraints : t -> int

val objective : t -> Vec.t -> float
(** [(1/2) x^T Q x + p^T x]. *)

val gradient : t -> Vec.t -> Vec.t
(** [Q x + p]. *)

val constraint_violation : t -> Vec.t -> float
(** Largest violation over [B x >= b] and [x >= 0]; 0 when feasible. *)

val is_feasible : ?eps:float -> t -> Vec.t -> bool
(** Feasibility within tolerance [eps] (default [1e-9]). *)
