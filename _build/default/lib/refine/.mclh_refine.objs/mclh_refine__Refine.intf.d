lib/refine/refine.mli: Design Mclh_circuit Placement
