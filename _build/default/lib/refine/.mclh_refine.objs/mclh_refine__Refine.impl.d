lib/refine/refine.ml: Array Cell Chip Design Float Hashtbl Hpwl Legality List Mclh_circuit Netlist Occupancy Placement
