(* Tests for serialization (native format and Bookshelf) and the density
   analysis module. *)

open Mclh_circuit
open Mclh_benchgen

let tmp suffix = Filename.temp_file "mclh_fmt" suffix

let gen ?(options = Generate.default_options) name scale =
  (Generate.generate ~options (Spec.scaled scale (Spec.find name))).Generate.design

(* ---------- native Io ---------- *)

let test_io_roundtrip () =
  let d = gen "fft_2" 0.005 in
  let path = tmp ".mclh" in
  Io.write_design ~path d;
  let d2 = Io.read_design ~path in
  Sys.remove path;
  Alcotest.(check string) "name" d.Design.name d2.Design.name;
  Alcotest.(check int) "cells" (Design.num_cells d) (Design.num_cells d2);
  Alcotest.(check bool) "placement" true (Placement.equal d.Design.global d2.Design.global);
  Alcotest.(check int) "nets" (Netlist.num_nets d.Design.nets) (Netlist.num_nets d2.Design.nets);
  Alcotest.(check (float 1e-9)) "row height" d.Design.chip.Chip.row_height
    d2.Design.chip.Chip.row_height;
  (* cell metadata *)
  Array.iteri
    (fun i (c : Cell.t) ->
      let c2 = d2.Design.cells.(i) in
      if c.Cell.width <> c2.Cell.width || c.Cell.height <> c2.Cell.height
         || c.Cell.bottom_rail <> c2.Cell.bottom_rail
      then Alcotest.failf "cell %d differs" i)
    d.Design.cells

let test_io_placement_roundtrip () =
  let pl = Placement.make ~xs:[| 1.5; 2.25; 100.0 |] ~ys:[| 0.0; 3.0; 7.0 |] in
  let path = tmp ".pl" in
  Io.write_placement ~path pl;
  let pl2 = Io.read_placement ~path in
  Sys.remove path;
  Alcotest.(check bool) "exact" true (Placement.equal pl pl2)

let test_io_rejects_garbage () =
  let path = tmp ".mclh" in
  let oc = open_out path in
  output_string oc "not a design\n";
  close_out oc;
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Io.read_design ~path);
       false
     with Failure _ -> true);
  Sys.remove path

(* ---------- Bookshelf ---------- *)

let bookshelf_roundtrip d =
  let base = Filename.temp_file "mclh_bs" "" in
  Sys.remove base;
  Bookshelf.write ~basename:base d;
  let d2 = Bookshelf.read ~aux:(base ^ ".aux") in
  List.iter
    (fun ext -> try Sys.remove (base ^ ext) with Sys_error _ -> ())
    [ ".aux"; ".nodes"; ".nets"; ".wts"; ".pl"; ".scl" ];
  d2

let test_bookshelf_roundtrip () =
  let d = gen "fft_2" 0.005 in
  let d2 = bookshelf_roundtrip d in
  Alcotest.(check int) "cells" (Design.num_cells d) (Design.num_cells d2);
  Alcotest.(check bool) "placement" true
    (Placement.equal ~eps:1e-6 d.Design.global d2.Design.global);
  Alcotest.(check int) "rows" d.Design.chip.Chip.num_rows d2.Design.chip.Chip.num_rows;
  Alcotest.(check int) "sites" d.Design.chip.Chip.num_sites d2.Design.chip.Chip.num_sites;
  (* wirelength survives the center-offset conversion up to the 9
     significant digits the text format carries per pin *)
  let rh = d.Design.chip.Chip.row_height in
  let h1 = Hpwl.total ~row_height:rh d.Design.nets d.Design.global in
  let h2 = Hpwl.total ~row_height:rh d2.Design.nets d2.Design.global in
  if Float.abs (h1 -. h2) > 1e-7 *. Float.max 1.0 h1 then
    Alcotest.failf "hpwl drifted: %.9f vs %.9f" h1 h2

let test_bookshelf_blockages () =
  let options = { Generate.default_options with blockage_fraction = 0.15 } in
  let d = gen ~options "fft_a" 0.005 in
  let d2 = bookshelf_roundtrip d in
  Alcotest.(check int) "blockages preserved"
    (Array.length d.Design.blockages)
    (Array.length d2.Design.blockages);
  Alcotest.(check int) "capacity preserved" (Design.free_capacity d)
    (Design.free_capacity d2);
  (* the re-read design still legalizes *)
  let legal = Mclh_core.Flow.legalize d2 in
  Alcotest.(check bool) "legalizes" true (Legality.is_legal d2 legal)

let test_bookshelf_heights () =
  let options = { Generate.default_options with tall_cell_fraction = 0.5 } in
  let d = gen ~options "fft_2" 0.005 in
  let d2 = bookshelf_roundtrip d in
  Alcotest.(check (list (pair int int))) "height histogram"
    (Design.count_by_height d) (Design.count_by_height d2)

let test_bookshelf_rejects_nonuniform_rows () =
  let base = Filename.temp_file "mclh_bs" "" in
  Sys.remove base;
  let d = gen "fft_a" 0.003 in
  Bookshelf.write ~basename:base d;
  (* corrupt the scl: change one row height *)
  let scl = base ^ ".scl" in
  let content = In_channel.with_open_text scl In_channel.input_all in
  let corrupted =
    Str.global_substitute (Str.regexp_string "Height        : 8")
      (let first = ref true in
       fun _ ->
         if !first then begin
           first := false;
           "Height        : 9"
         end
         else "Height        : 8")
      content
  in
  Out_channel.with_open_text scl (fun oc -> output_string oc corrupted);
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Bookshelf.read ~aux:(base ^ ".aux"));
       false
     with Failure _ -> true);
  List.iter
    (fun ext -> try Sys.remove (base ^ ext) with Sys_error _ -> ())
    [ ".aux"; ".nodes"; ".nets"; ".wts"; ".pl"; ".scl" ]

(* ---------- Density ---------- *)

let micro_design () =
  (* 4 rows x 16 sites, two cells in the left half *)
  let chip = Chip.make ~num_rows:4 ~num_sites:16 () in
  let cells =
    [| Cell.make ~id:0 ~width:4 ~height:1 ();
       Cell.make ~id:1 ~width:4 ~height:2 ~bottom_rail:Rail.Vss () |]
  in
  Design.make ~name:"micro" ~chip ~cells
    ~global:(Placement.make ~xs:[| 0.0; 0.0 |] ~ys:[| 1.0; 2.0 |])
    ~nets:(Netlist.empty ~num_cells:2)
    ()

let test_density_map () =
  let d = micro_design () in
  let m = Density.map ~bins_x:2 ~bins_y:1 d d.Design.global in
  (* left bin (8x4 = 32 sites) holds 4 + 8 = 12 area -> 0.375 *)
  Alcotest.(check (float 1e-9)) "left bin" 0.375 (Density.get m 0 0);
  Alcotest.(check (float 1e-9)) "right bin" 0.0 (Density.get m 1 0);
  let o = Density.overflow m in
  Alcotest.(check (float 1e-9)) "max" 0.375 o.Density.max_utilization;
  Alcotest.(check int) "no overflow" 0 o.Density.overflowed_bins

let test_density_blockage_reduces_free () =
  let chip = Chip.make ~num_rows:2 ~num_sites:8 () in
  let cells = [| Cell.make ~id:0 ~width:4 ~height:1 () |] in
  let blockages = [| Blockage.make ~row:0 ~height:2 ~x:4 ~width:4 |] in
  let d =
    Design.make ~blockages ~name:"b" ~chip ~cells
      ~global:(Placement.make ~xs:[| 0.0 |] ~ys:[| 0.0 |])
      ~nets:(Netlist.empty ~num_cells:1)
      ()
  in
  let m = Density.map ~bins_x:1 ~bins_y:1 d d.Design.global in
  (* free area = 16 - 8 = 8; used = 4 -> 0.5 *)
  Alcotest.(check (float 1e-9)) "blockage-adjusted" 0.5 (Density.get m 0 0)

let test_density_overflow_detection () =
  (* two cells stacked on the same spot: utilization 2.0 in that bin *)
  let chip = Chip.make ~num_rows:2 ~num_sites:8 () in
  let cells =
    [| Cell.make ~id:0 ~width:8 ~height:1 (); Cell.make ~id:1 ~width:8 ~height:1 () |]
  in
  let d =
    Design.make ~name:"o" ~chip ~cells
      ~global:(Placement.make ~xs:[| 0.0; 0.0 |] ~ys:[| 0.0; 0.0 |])
      ~nets:(Netlist.empty ~num_cells:2)
      ()
  in
  let m = Density.map ~bins_x:1 ~bins_y:2 d d.Design.global in
  Alcotest.(check (float 1e-9)) "overloaded bin" 2.0 (Density.get m 0 0);
  let o = Density.overflow m in
  Alcotest.(check int) "one overflowed" 1 o.Density.overflowed_bins;
  Alcotest.(check bool) "ratio positive" true (o.Density.overflow_ratio > 0.0)

let test_row_utilization () =
  let d = micro_design () in
  let rows = Density.row_utilization d d.Design.global in
  Alcotest.(check (array (float 1e-9))) "rows"
    [| 0.0; 0.25; 0.25; 0.25 |] rows

let test_density_fractional_positions () =
  (* area spread across a bin boundary is split proportionally *)
  let chip = Chip.make ~num_rows:1 ~num_sites:8 () in
  let cells = [| Cell.make ~id:0 ~width:4 ~height:1 () |] in
  let d =
    Design.make ~name:"f" ~chip ~cells
      ~global:(Placement.make ~xs:[| 2.0 |] ~ys:[| 0.0 |])
      ~nets:(Netlist.empty ~num_cells:1)
      ()
  in
  let m = Density.map ~bins_x:2 ~bins_y:1 d d.Design.global in
  (* cell [2, 6): 2 sites in each 4-site bin -> 0.5 each *)
  Alcotest.(check (float 1e-9)) "left" 0.5 (Density.get m 0 0);
  Alcotest.(check (float 1e-9)) "right" 0.5 (Density.get m 1 0)

let test_legal_placement_never_overflows () =
  let d = gen "des_perf_1" 0.008 in
  let legal = Mclh_core.Flow.legalize d in
  let m = Density.map d legal in
  let o = Density.overflow ~limit:1.0000001 m in
  Alcotest.(check int)
    (Printf.sprintf "legal placement has no >100%% bins (max %.4f)"
       o.Density.max_utilization)
    0 o.Density.overflowed_bins

let qc_bookshelf_roundtrip =
  QCheck.Test.make ~count:10 ~name:"bookshelf: roundtrip any instance"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let options =
        { Generate.default_options with
          seed;
          blockage_fraction = (if seed mod 2 = 0 then 0.1 else 0.0);
          tall_cell_fraction = (if seed mod 3 = 0 then 0.3 else 0.0) }
      in
      let d = gen ~options "fft_2" 0.003 in
      let d2 = bookshelf_roundtrip d in
      Placement.equal ~eps:1e-6 d.Design.global d2.Design.global
      && Design.count_by_height d = Design.count_by_height d2)

let () =
  Alcotest.run "formats"
    [ ( "native io",
        [ Alcotest.test_case "design roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "placement roundtrip" `Quick test_io_placement_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage ] );
      ( "bookshelf",
        [ Alcotest.test_case "roundtrip" `Quick test_bookshelf_roundtrip;
          Alcotest.test_case "blockages as terminals" `Quick test_bookshelf_blockages;
          Alcotest.test_case "height histogram" `Quick test_bookshelf_heights;
          Alcotest.test_case "rejects non-uniform rows" `Quick
            test_bookshelf_rejects_nonuniform_rows ] );
      ( "density",
        [ Alcotest.test_case "map" `Quick test_density_map;
          Alcotest.test_case "blockage-adjusted" `Quick test_density_blockage_reduces_free;
          Alcotest.test_case "overflow detection" `Quick test_density_overflow_detection;
          Alcotest.test_case "row utilization" `Quick test_row_utilization;
          Alcotest.test_case "fractional spread" `Quick test_density_fractional_positions;
          Alcotest.test_case "legal never overflows" `Quick
            test_legal_placement_never_overflows ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qc_bookshelf_roundtrip ] ) ]
