(* Tests for the placement substrate: rails, cells, chip geometry, legality
   checking, wirelength and displacement metrics, SVG rendering. *)

open Mclh_circuit

let cell ?rail ~id ~w ~h () = Cell.make ~id ~width:w ~height:h ?bottom_rail:rail ()

let small_chip = Chip.make ~num_rows:6 ~num_sites:30 ()

let test_rail () =
  Alcotest.(check bool) "opposite" true (Rail.equal (Rail.opposite Rail.Vdd) Rail.Vss);
  Alcotest.(check bool) "equal" true (Rail.equal Rail.Vdd Rail.Vdd);
  Alcotest.(check string) "to_string" "VDD" (Rail.to_string Rail.Vdd)

let test_cell_validation () =
  Alcotest.(check bool) "even needs rail" true
    (try
       ignore (Cell.make ~id:0 ~width:2 ~height:2 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "odd must not fix rail" true
    (try
       ignore (Cell.make ~id:0 ~width:2 ~height:1 ~bottom_rail:Rail.Vdd ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad width" true
    (try
       ignore (Cell.make ~id:0 ~width:0 ~height:1 ());
       false
     with Invalid_argument _ -> true);
  let c = cell ~rail:Rail.Vss ~id:3 ~w:4 ~h:2 () in
  Alcotest.(check bool) "multi-row" true (Cell.is_multi_row c);
  Alcotest.(check bool) "even" true (Cell.is_even_height c);
  Alcotest.(check int) "area" 8 (Cell.area c);
  Alcotest.(check string) "default name" "c3" c.Cell.name

let test_chip_rails () =
  (* base rail VSS on row 0; alternating upward *)
  Alcotest.(check bool) "row0" true (Rail.equal (Chip.bottom_rail small_chip 0) Rail.Vss);
  Alcotest.(check bool) "row1" true (Rail.equal (Chip.bottom_rail small_chip 1) Rail.Vdd);
  Alcotest.(check bool) "row2" true (Rail.equal (Chip.bottom_rail small_chip 2) Rail.Vss);
  Alcotest.(check bool) "row range" true
    (try
       ignore (Chip.bottom_rail small_chip 6);
       false
     with Invalid_argument _ -> true)

let test_row_admits () =
  let odd = cell ~id:0 ~w:2 ~h:1 () in
  let even_vss = cell ~rail:Rail.Vss ~id:1 ~w:2 ~h:2 () in
  let even_vdd = cell ~rail:Rail.Vdd ~id:2 ~w:2 ~h:2 () in
  Alcotest.(check bool) "odd anywhere" true (Chip.row_admits small_chip odd 3);
  Alcotest.(check bool) "odd top edge" true (Chip.row_admits small_chip odd 5);
  Alcotest.(check bool) "even vss on even rows" true (Chip.row_admits small_chip even_vss 2);
  Alcotest.(check bool) "even vss not on odd rows" false (Chip.row_admits small_chip even_vss 3);
  Alcotest.(check bool) "even vdd on odd rows" true (Chip.row_admits small_chip even_vdd 3);
  Alcotest.(check bool) "tall cell must fit" false (Chip.row_admits small_chip even_vdd 5)

let test_nearest_admitting_row () =
  let odd = cell ~id:0 ~w:2 ~h:1 () in
  let even_vss = cell ~rail:Rail.Vss ~id:1 ~w:2 ~h:2 () in
  Alcotest.(check (option int)) "odd rounds" (Some 3)
    (Chip.nearest_admitting_row small_chip odd 3.2);
  Alcotest.(check (option int)) "odd clamps low" (Some 0)
    (Chip.nearest_admitting_row small_chip odd (-2.0));
  Alcotest.(check (option int)) "odd clamps high" (Some 5)
    (Chip.nearest_admitting_row small_chip odd 9.9);
  (* even_vss admits rows 0, 2, 4; from 3.4 the nearest is 4 *)
  Alcotest.(check (option int)) "even parity" (Some 4)
    (Chip.nearest_admitting_row small_chip even_vss 3.4);
  Alcotest.(check (option int)) "even parity down" (Some 2)
    (Chip.nearest_admitting_row small_chip even_vss 2.9);
  (* a cell taller than the chip admits nothing *)
  let tall = cell ~id:2 ~w:2 ~h:7 () in
  Alcotest.(check (option int)) "too tall" None
    (Chip.nearest_admitting_row small_chip tall 1.0)

let two_cell_design ?(nets = []) positions =
  let cells = [| cell ~id:0 ~w:3 ~h:1 (); cell ~rail:Rail.Vss ~id:1 ~w:2 ~h:2 () |] in
  let xs = Array.map fst positions and ys = Array.map snd positions in
  Design.make ~name:"t" ~chip:small_chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.make ~num_cells:2 nets)
    ()

let test_legality_clean () =
  let d = two_cell_design [| (1.0, 1.0); (10.0, 2.0) |] in
  let pl = Placement.make ~xs:[| 1.0; 10.0 |] ~ys:[| 1.0; 2.0 |] in
  Alcotest.(check bool) "legal" true (Legality.is_legal d pl)

let test_legality_overlap () =
  let d = two_cell_design [| (1.0, 2.0); (3.0, 2.0) |] in
  let pl = Placement.make ~xs:[| 1.0; 3.0 |] ~ys:[| 2.0; 2.0 |] in
  (* cell 0 spans [1,4) in row 2; cell 1 spans [3,5) in rows 2-3: overlap *)
  let v = Legality.check d pl in
  Alcotest.(check bool) "overlap found" true
    (List.exists (function Legality.Overlap (0, 1, 2) -> true | _ -> false) v);
  Alcotest.(check int) "one blamed cell" 1 (Legality.count_illegal d pl)

let test_legality_offsite_outside () =
  let d = two_cell_design [| (1.0, 1.0); (10.0, 2.0) |] in
  let off = Placement.make ~xs:[| 1.4; 10.0 |] ~ys:[| 1.0; 2.0 |] in
  Alcotest.(check bool) "off site" true
    (List.exists (function Legality.Off_site 0 -> true | _ -> false)
       (Legality.check d off));
  let out = Placement.make ~xs:[| 28.0; 10.0 |] ~ys:[| 1.0; 2.0 |] in
  Alcotest.(check bool) "outside" true
    (List.exists (function Legality.Outside 0 -> true | _ -> false)
       (Legality.check d out))

let test_legality_rail () =
  let d = two_cell_design [| (1.0, 1.0); (10.0, 2.0) |] in
  (* the VSS double on an odd row is a rail mismatch *)
  let pl = Placement.make ~xs:[| 1.0; 10.0 |] ~ys:[| 1.0; 3.0 |] in
  Alcotest.(check bool) "rail mismatch" true
    (List.exists (function Legality.Rail_mismatch 1 -> true | _ -> false)
       (Legality.check d pl))

let test_legality_wide_cell_multi_overlap () =
  (* one wide cell overlapping two successors must flag both *)
  let cells = [| cell ~id:0 ~w:10 ~h:1 (); cell ~id:1 ~w:2 ~h:1 (); cell ~id:2 ~w:2 ~h:1 () |] in
  let xs = [| 0.0; 2.0; 5.0 |] and ys = [| 0.0; 0.0; 0.0 |] in
  let d =
    Design.make ~name:"wide" ~chip:small_chip ~cells
      ~global:(Placement.make ~xs:(Array.copy xs) ~ys:(Array.copy ys))
      ~nets:(Netlist.empty ~num_cells:3) ()
  in
  let v = Legality.check d (Placement.make ~xs ~ys) in
  let overlaps = List.filter (function Legality.Overlap _ -> true | _ -> false) v in
  Alcotest.(check int) "two overlaps" 2 (List.length overlaps)

let test_hpwl () =
  let nets =
    [ [| { Netlist.cell = 0; dx = 0.0; dy = 0.0 };
         { Netlist.cell = 1; dx = 1.0; dy = 1.0 } |] ]
  in
  let d = two_cell_design ~nets [| (0.0, 0.0); (5.0, 2.0) |] in
  (* pins at (0,0) and (6,3): hpwl = 6 + rh * 3 *)
  Alcotest.(check (float 1e-9)) "hpwl rh=1" 9.0 (Hpwl.total d.Design.nets d.Design.global);
  Alcotest.(check (float 1e-9)) "hpwl rh=8" 30.0
    (Hpwl.total ~row_height:8.0 d.Design.nets d.Design.global);
  let after = Placement.make ~xs:[| 0.0; 7.0 |] ~ys:[| 0.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "delta" (2.0 /. 9.0)
    (Hpwl.delta d.Design.nets ~before:d.Design.global after)

let test_metrics () =
  let before = Placement.make ~xs:[| 0.0; 5.0 |] ~ys:[| 0.0; 1.0 |] in
  let after = Placement.make ~xs:[| 3.0; 5.0 |] ~ys:[| 0.0; 3.0 |] in
  let m = Metrics.displacement ~before after in
  Alcotest.(check (float 1e-9)) "manhattan" 5.0 m.Metrics.total_manhattan;
  Alcotest.(check (float 1e-9)) "squared" 13.0 m.Metrics.total_squared;
  Alcotest.(check int) "moved" 2 m.Metrics.moved_cells;
  let m8 = Metrics.displacement ~row_height:8.0 ~before after in
  Alcotest.(check (float 1e-9)) "manhattan scaled" 19.0 m8.Metrics.total_manhattan;
  Alcotest.(check (float 1e-9)) "max scaled" 16.0 m8.Metrics.max_manhattan

let test_placement_utils () =
  let p = Placement.make ~xs:[| 1.2; 3.0 |] ~ys:[| 0.0; 4.9 |] in
  Alcotest.(check bool) "not integral" false (Placement.is_integral p);
  let r = Placement.round p in
  Alcotest.(check bool) "round integral" true (Placement.is_integral r);
  Alcotest.(check (float 0.0)) "rounded x" 1.0 r.Placement.xs.(0);
  Alcotest.(check (float 0.0)) "rounded y" 5.0 r.Placement.ys.(1);
  Alcotest.(check bool) "copy independent" true
    (let c = Placement.copy p in
     Placement.set c 0 ~x:9.0 ~y:9.0;
     p.Placement.xs.(0) = 1.2)

let test_netlist_validation () =
  Alcotest.(check bool) "pin out of range" true
    (try
       ignore
         (Netlist.make ~num_cells:1
            [ [| { Netlist.cell = 3; dx = 0.0; dy = 0.0 } |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty net" true
    (try
       ignore (Netlist.make ~num_cells:1 [ [||] ]);
       false
     with Invalid_argument _ -> true);
  let nets =
    Netlist.make ~num_cells:3
      [ [| { Netlist.cell = 0; dx = 0.0; dy = 0.0 };
           { Netlist.cell = 2; dx = 0.0; dy = 0.0 } |];
        [| { Netlist.cell = 2; dx = 1.0; dy = 0.0 } |] ]
  in
  Alcotest.(check int) "num_pins" 3 (Netlist.num_pins nets);
  let by_cell = Netlist.nets_of_cell nets in
  Alcotest.(check (array (array int))) "nets_of_cell"
    [| [| 0 |]; [||]; [| 0; 1 |] |] by_cell

let test_design_validation () =
  let cells = [| cell ~id:0 ~w:3 ~h:1 () |] in
  Alcotest.(check bool) "id mismatch" true
    (try
       ignore
         (Design.make ~name:"bad" ~chip:small_chip
            ~cells:[| cell ~id:5 ~w:1 ~h:1 () |]
            ~global:(Placement.create 1)
            ~nets:(Netlist.empty ~num_cells:1) ());
       false
     with Invalid_argument _ -> true);
  let d =
    Design.make ~name:"ok" ~chip:small_chip ~cells
      ~global:(Placement.create 1) ~nets:(Netlist.empty ~num_cells:1) ()
  in
  Alcotest.(check int) "area" 3 (Design.total_cell_area d);
  Alcotest.(check (float 1e-9)) "density" (3.0 /. 180.0) (Design.density d);
  Alcotest.(check (list (pair int int))) "heights" [ (1, 1) ] (Design.count_by_height d)

let test_svg_render () =
  let d = two_cell_design [| (1.0, 1.0); (10.0, 2.0) |] in
  let pl = Placement.make ~xs:[| 2.0; 10.0 |] ~ys:[| 1.0; 2.0 |] in
  let svg = Svg.render d pl in
  Alcotest.(check bool) "has svg root" true
    (String.length svg > 0
    && String.sub svg 0 4 = "<svg"
    &&
    let contains needle =
      let nl = String.length needle and sl = String.length svg in
      let rec go i = i + nl <= sl && (String.sub svg i nl = needle || go (i + 1)) in
      go 0
    in
    contains "<rect" && contains "</svg>" && contains "<line");
  (* zoom window renders fewer elements than the full chip *)
  let zoom =
    Svg.render
      ~options:{ Svg.default_options with window = Some (0.0, 0.0, 5.0, 3.0) }
      d pl
  in
  Alcotest.(check bool) "zoom smaller" true (String.length zoom <= String.length svg)

let () =
  Alcotest.run "circuit"
    [ ("rail", [ Alcotest.test_case "basics" `Quick test_rail ]);
      ("cell", [ Alcotest.test_case "validation" `Quick test_cell_validation ]);
      ( "chip",
        [ Alcotest.test_case "rails" `Quick test_chip_rails;
          Alcotest.test_case "row_admits" `Quick test_row_admits;
          Alcotest.test_case "nearest admitting row" `Quick test_nearest_admitting_row ] );
      ( "legality",
        [ Alcotest.test_case "clean placement" `Quick test_legality_clean;
          Alcotest.test_case "overlap" `Quick test_legality_overlap;
          Alcotest.test_case "off-site / outside" `Quick test_legality_offsite_outside;
          Alcotest.test_case "rail mismatch" `Quick test_legality_rail;
          Alcotest.test_case "wide multi-overlap" `Quick test_legality_wide_cell_multi_overlap ] );
      ( "metrics",
        [ Alcotest.test_case "hpwl" `Quick test_hpwl;
          Alcotest.test_case "displacement" `Quick test_metrics ] );
      ( "data",
        [ Alcotest.test_case "placement utils" `Quick test_placement_utils;
          Alcotest.test_case "netlist validation" `Quick test_netlist_validation;
          Alcotest.test_case "design validation" `Quick test_design_validation ] );
      ("svg", [ Alcotest.test_case "render" `Quick test_svg_render ]) ]
