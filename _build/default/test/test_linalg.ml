(* Unit and property tests for the linear-algebra substrate. *)

open Mclh_linalg

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* deterministic float stream for test data *)
let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* ---------- Vec ---------- *)

let test_vec_basics () =
  let x = Vec.of_list [ 1.0; -2.0; 3.0 ] in
  let y = Vec.of_list [ 0.5; 0.5; 0.5 ] in
  check_float "dot" 1.0 (Vec.dot x y);
  check_float "norm_inf" 3.0 (Vec.norm_inf x);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 x);
  check_float "sum" 2.0 (Vec.sum x);
  check_float "min" (-2.0) (Vec.min_elt x);
  check_float "max" 3.0 (Vec.max_elt x);
  Alcotest.(check bool)
    "add" true
    (Vec.equal (Vec.add x y) (Vec.of_list [ 1.5; -1.5; 3.5 ]));
  Alcotest.(check bool)
    "sub" true
    (Vec.equal (Vec.sub x y) (Vec.of_list [ 0.5; -2.5; 2.5 ]));
  Alcotest.(check bool)
    "scale" true
    (Vec.equal (Vec.scale 2.0 x) (Vec.of_list [ 2.0; -4.0; 6.0 ]))

let test_vec_parts () =
  let x = Vec.of_list [ 1.0; -2.0; 0.0 ] in
  let pos = Vec.pos_part x and neg = Vec.neg_part x in
  Alcotest.(check bool) "pos" true (Vec.equal pos (Vec.of_list [ 1.0; 0.0; 0.0 ]));
  Alcotest.(check bool) "neg" true (Vec.equal neg (Vec.of_list [ 0.0; 2.0; 0.0 ]));
  Alcotest.(check bool)
    "decompose" true
    (Vec.equal x (Vec.sub pos neg))

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  let y = Vec.of_list [ 10.0; 20.0 ] in
  Vec.axpy 3.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.equal y (Vec.of_list [ 13.0; 26.0 ]))

let test_vec_dist () =
  let x = Vec.of_list [ 1.0; 5.0 ] and y = Vec.of_list [ 2.0; 2.0 ] in
  check_float "dist_inf" 3.0 (Vec.dist_inf x y)

let test_vec_errors () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot (Vec.zeros 2) (Vec.zeros 3)));
  Alcotest.check_raises "min empty"
    (Invalid_argument "Vec.min_elt: empty vector") (fun () ->
      ignore (Vec.min_elt [||]))

(* ---------- Dense / LU ---------- *)

let test_dense_mul () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Dense.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let ab = Dense.mul a b in
  Alcotest.(check bool)
    "mul" true
    (Dense.equal ab (Dense.of_arrays [| [| 2.0; 1.0 |]; [| 4.0; 3.0 |] |]));
  let x = Vec.of_list [ 1.0; 1.0 ] in
  Alcotest.(check bool)
    "mul_vec" true
    (Vec.equal (Dense.mul_vec a x) (Vec.of_list [ 3.0; 7.0 ]));
  Alcotest.(check bool)
    "mul_vec_t" true
    (Vec.equal (Dense.mul_vec_t a x) (Vec.of_list [ 4.0; 6.0 ]))

let test_dense_transpose_gram () =
  let a = Dense.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Dense.transpose a in
  Alcotest.(check int) "rows" 3 (Dense.rows at);
  Alcotest.(check int) "cols" 2 (Dense.cols at);
  Alcotest.(check bool) "gram symmetric" true (Dense.is_symmetric (Dense.gram a));
  Alcotest.(check bool)
    "outer gram symmetric" true
    (Dense.is_symmetric (Dense.outer_gram a))

let test_lu_solve () =
  let a = Dense.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = Vec.of_list [ 5.0; 10.0 ] in
  let x = Lu.solve_system a b in
  Alcotest.(check bool) "solution" true (Vec.equal ~eps:1e-12 x (Vec.of_list [ 1.0; 3.0 ]))

let test_lu_pivoting () =
  (* zero pivot without swapping: requires partial pivoting *)
  let a = Dense.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_system a (Vec.of_list [ 2.0; 3.0 ]) in
  Alcotest.(check bool) "swap solve" true (Vec.equal x (Vec.of_list [ 3.0; 2.0 ]))

let test_lu_singular () =
  let a = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "raises Singular" true
    (try
       ignore (Lu.factorize a);
       false
     with Lu.Singular _ -> true)

let test_lu_det_inverse () =
  let a = Dense.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let f = Lu.factorize a in
  check_close 1e-9 "det" 10.0 (Lu.det f);
  let inv = Lu.inverse f in
  Alcotest.(check bool)
    "A * A^-1 = I" true
    (Dense.equal ~eps:1e-12 (Dense.mul a inv) (Dense.identity 2))

let test_lu_random_roundtrip () =
  let rand = mk_rand 7 in
  for n = 1 to 12 do
    let a = Dense.init n n (fun _ _ -> rand () -. 0.5) in
    (* diagonal boost keeps it comfortably nonsingular *)
    for i = 0 to n - 1 do
      Dense.set a i i (Dense.get a i i +. 3.0)
    done;
    let x_true = Vec.init n (fun i -> rand () +. float_of_int i) in
    let b = Dense.mul_vec a x_true in
    let x = Lu.solve_system a b in
    if not (Vec.equal ~eps:1e-8 x x_true) then
      Alcotest.failf "LU roundtrip failed at n = %d" n
  done

(* ---------- Tridiag ---------- *)

let random_tridiag rand n =
  let diag = Array.init n (fun _ -> 4.0 +. rand ()) in
  let off = Array.init (max 0 (n - 1)) (fun _ -> rand () -. 0.5) in
  Tridiag.of_symmetric ~diag ~off

let test_tridiag_solve_vs_lu () =
  let rand = mk_rand 11 in
  List.iter
    (fun n ->
      let t = random_tridiag rand n in
      let b = Vec.init n (fun i -> rand () *. float_of_int (i + 1)) in
      let x = Tridiag.solve t b in
      let x_ref = Lu.solve_system (Tridiag.to_dense t) b in
      if not (Vec.equal ~eps:1e-8 x x_ref) then
        Alcotest.failf "Thomas vs LU mismatch at n = %d" n)
    [ 1; 2; 3; 5; 17; 64 ]

let test_tridiag_pivoting_hard () =
  (* not diagonally dominant: plain Thomas still finishes here, but the
     pivoting variant must agree with the dense solve *)
  let t =
    Tridiag.make ~sub:[| 10.0; 0.5 |] ~diag:[| 0.1; 0.2; 5.0 |]
      ~sup:[| 3.0; -1.0 |]
  in
  let b = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let x = Tridiag.solve_pivoting t b in
  let x_ref = Lu.solve_system (Tridiag.to_dense t) b in
  Alcotest.(check bool) "pivot vs LU" true (Vec.equal ~eps:1e-8 x x_ref)

let test_tridiag_prefactored () =
  let rand = mk_rand 101 in
  List.iter
    (fun n ->
      let t = random_tridiag rand n in
      let f = Tridiag.prefactor t in
      let b = Vec.init n (fun i -> rand () *. float_of_int (i + 1)) in
      let x_ref = Tridiag.solve t b in
      let dst = Vec.zeros n in
      Tridiag.solve_prefactored f b dst;
      if not (Vec.equal ~eps:1e-10 dst x_ref) then
        Alcotest.failf "prefactored mismatch at n = %d" n;
      (* in-place: b and dst aliased *)
      let b2 = Vec.copy b in
      Tridiag.solve_prefactored f b2 b2;
      if not (Vec.equal ~eps:1e-10 b2 x_ref) then
        Alcotest.failf "aliased prefactored mismatch at n = %d" n)
    [ 1; 2; 3; 9; 33 ]

let test_tridiag_mul_identity () =
  let t = Tridiag.identity 4 in
  let x = Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check bool) "I x = x" true (Vec.equal (Tridiag.mul_vec t x) x);
  Alcotest.(check bool)
    "dominant" true
    (Tridiag.is_diagonally_dominant t)

let test_tridiag_scale_shift () =
  let t = Tridiag.of_symmetric ~diag:[| 2.0; 2.0 |] ~off:[| -1.0 |] in
  let t2 = Tridiag.add_scaled_identity (Tridiag.scale 2.0 t) 1.0 in
  let x = Vec.of_list [ 1.0; 1.0 ] in
  Alcotest.(check bool)
    "(2T + I) x" true
    (Vec.equal (Tridiag.mul_vec t2 x) (Vec.of_list [ 3.0; 3.0 ]))

(* ---------- Coo / Csr ---------- *)

let test_coo_duplicates () =
  let c = Coo.create ~rows:2 ~cols:2 in
  Coo.add c 0 0 1.0;
  Coo.add c 0 0 2.0;
  Coo.add c 1 1 (-1.0);
  Coo.add c 1 1 1.0;
  let m = Coo.to_csr c in
  check_float "merged" 3.0 (Csr.get m 0 0);
  Alcotest.(check int) "zero dropped" 1 (Csr.nnz m)

let test_csr_mul_vs_dense () =
  let rand = mk_rand 13 in
  let d =
    Dense.init 7 5 (fun _ _ -> if rand () < 0.6 then 0.0 else rand () -. 0.5)
  in
  let s = Coo.to_csr (Coo.of_dense d) in
  let x = Vec.init 5 (fun i -> rand () +. float_of_int i) in
  Alcotest.(check bool)
    "A x" true
    (Vec.equal ~eps:1e-12 (Csr.mul_vec s x) (Dense.mul_vec d x));
  let y = Vec.init 7 (fun i -> rand () -. float_of_int i) in
  Alcotest.(check bool)
    "A^T y" true
    (Vec.equal ~eps:1e-12 (Csr.mul_vec_t s y) (Dense.mul_vec_t d y))

let test_csr_transpose () =
  let rand = mk_rand 17 in
  let d =
    Dense.init 6 9 (fun _ _ -> if rand () < 0.7 then 0.0 else rand ())
  in
  let s = Coo.to_csr (Coo.of_dense d) in
  Alcotest.(check bool)
    "transpose" true
    (Dense.equal (Csr.to_dense (Csr.transpose s)) (Dense.transpose d))

let test_csr_add_mul () =
  let d = Dense.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |] in
  let s = Coo.to_csr (Coo.of_dense d) in
  let acc = Vec.of_list [ 10.0; 10.0 ] in
  Csr.add_mul_vec s (Vec.of_list [ 1.0; 1.0 ]) acc;
  Alcotest.(check bool) "acc + A x" true (Vec.equal acc (Vec.of_list [ 13.0; 13.0 ]))

let test_csr_identity_row_entries () =
  let s = Csr.identity 3 in
  Alcotest.(check (list (pair int (float 0.0))))
    "row 1" [ (1, 1.0) ] (Csr.row_entries s 1);
  check_float "frobenius" (sqrt 3.0) (Csr.frobenius_norm s)

let test_csr_validation () =
  Alcotest.(check bool) "bad row_ptr rejected" true
    (try
       ignore
         (Csr.make ~rows:2 ~cols:2 ~row_ptr:[| 0; 2; 1 |] ~col_idx:[| 0 |]
            ~values:[| 1.0 |]);
       false
     with Invalid_argument _ -> true)

(* ---------- Blocks ---------- *)

let test_blocks_vs_e_matrix () =
  let rand = mk_rand 23 in
  let blocks = Blocks.make ~nvars:9 [ [| 0; 3 |]; [| 5; 6; 7 |] ] in
  Alcotest.(check int) "constraints" 3 (Blocks.num_constraints blocks);
  Alcotest.(check bool) "not all double" false (Blocks.all_double blocks);
  let e = Blocks.e_matrix blocks in
  let x = Vec.init 9 (fun _ -> rand () -. 0.5) in
  let via_blocks = Blocks.apply_ete blocks x in
  let via_matrix = Csr.mul_vec_t e (Csr.mul_vec e x) in
  Alcotest.(check bool)
    "E^T E x" true
    (Vec.equal ~eps:1e-12 via_blocks via_matrix)

let test_blocks_solve_shifted () =
  let rand = mk_rand 29 in
  let blocks = Blocks.make ~nvars:8 [ [| 1; 2 |]; [| 4; 5; 6; 7 |] ] in
  let alpha = 2.5 and coef = 7.0 in
  let b = Vec.init 8 (fun _ -> rand () *. 4.0 -. 2.0) in
  let y = Blocks.solve_shifted ~alpha ~coef blocks b in
  (* residual check against the operator itself *)
  let ete_y = Blocks.apply_ete blocks y in
  let recon = Vec.init 8 (fun i -> (alpha *. y.(i)) +. (coef *. ete_y.(i))) in
  Alcotest.(check bool) "residual" true (Vec.equal ~eps:1e-9 recon b)

let test_blocks_solve_sparse () =
  let blocks = Blocks.make ~nvars:6 [ [| 0; 1 |]; [| 3; 4 |] ] in
  let entries = [ (0, 1.0); (2, -2.0) ] in
  let sparse = Blocks.solve_shifted_sparse ~alpha:1.0 ~coef:3.0 blocks entries in
  let dense_rhs = Vec.zeros 6 in
  List.iter (fun (v, value) -> dense_rhs.(v) <- dense_rhs.(v) +. value) entries;
  let dense = Blocks.solve_shifted ~alpha:1.0 ~coef:3.0 blocks dense_rhs in
  let sparse_full = Vec.zeros 6 in
  List.iter (fun (v, value) -> sparse_full.(v) <- sparse_full.(v) +. value) sparse;
  Alcotest.(check bool) "sparse = dense" true (Vec.equal ~eps:1e-12 sparse_full dense)

let test_blocks_mismatch_average () =
  let blocks = Blocks.make ~nvars:4 [ [| 0; 1; 2 |] ] in
  let x = Vec.of_list [ 1.0; 4.0; 2.5; 9.0 ] in
  check_float "mismatch" 3.0 (Blocks.mismatch blocks x);
  Blocks.average_into blocks x;
  check_float "averaged hub" 2.5 x.(0);
  check_float "averaged spoke" 2.5 x.(1);
  check_float "untouched" 9.0 x.(3);
  check_float "mismatch after" 0.0 (Blocks.mismatch blocks x)

let test_blocks_validation () =
  Alcotest.(check bool) "overlapping chains rejected" true
    (try
       ignore (Blocks.make ~nvars:4 [ [| 0; 1 |]; [| 1; 2 |] ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Eig ---------- *)

let test_power_iteration_diag () =
  let a = Dense.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let r = Eig.dominant_dense a in
  Alcotest.(check bool) "converged" true r.Eig.converged;
  check_close 1e-5 "dominant" 3.0 r.Eig.value

let test_power_iteration_symmetric () =
  (* eigenvalues of [[2,1],[1,2]] are 3 and 1 *)
  let a = Dense.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let r = Eig.dominant_dense a in
  check_close 1e-5 "dominant" 3.0 r.Eig.value

(* ---------- QCheck properties ---------- *)

let qc_tridiag_solve =
  QCheck.Test.make ~count:100 ~name:"tridiag: solve then multiply is identity"
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 1) in
      let t = random_tridiag rand n in
      let b = Vec.init n (fun _ -> rand () *. 10.0 -. 5.0) in
      let x = Tridiag.solve t b in
      Vec.dist_inf (Tridiag.mul_vec t x) b < 1e-7)

let qc_blocks_shifted =
  QCheck.Test.make ~count:100 ~name:"blocks: shifted solve residual"
    QCheck.(triple (int_range 2 6) (int_range 0 1000) (float_range 0.1 100.0))
    (fun (chain_len, seed, coef) ->
      let rand = mk_rand (seed + 3) in
      let nvars = chain_len + 3 in
      let blocks =
        Blocks.make ~nvars [ Array.init chain_len (fun i -> i) ]
      in
      let b = Vec.init nvars (fun _ -> rand () *. 6.0 -. 3.0) in
      let y = Blocks.solve_shifted ~alpha:1.7 ~coef blocks b in
      let ete_y = Blocks.apply_ete blocks y in
      let recon = Vec.init nvars (fun i -> (1.7 *. y.(i)) +. (coef *. ete_y.(i))) in
      Vec.dist_inf recon b < 1e-7 *. Float.max 1.0 (Vec.norm_inf b))

let qc_csr_roundtrip =
  QCheck.Test.make ~count:100 ~name:"csr: dense -> csr -> dense roundtrip"
    QCheck.(pair (int_range 1 15) (int_range 0 1000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 5) in
      let d =
        Dense.init n (n + 2) (fun _ _ ->
            if rand () < 0.5 then 0.0 else rand () -. 0.5)
      in
      Dense.equal d (Csr.to_dense (Coo.to_csr (Coo.of_dense d))))

let qc_lu_solve =
  QCheck.Test.make ~count:60 ~name:"lu: random diagonally-boosted solve"
    QCheck.(pair (int_range 1 20) (int_range 0 1000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 9) in
      let a = Dense.init n n (fun _ _ -> rand () -. 0.5) in
      for i = 0 to n - 1 do
        Dense.set a i i (Dense.get a i i +. float_of_int n)
      done;
      let b = Vec.init n (fun _ -> rand () *. 2.0) in
      let x = Lu.solve_system a b in
      Vec.dist_inf (Dense.mul_vec a x) b < 1e-7)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ qc_tridiag_solve; qc_blocks_shifted; qc_csr_roundtrip; qc_lu_solve ]
  in
  Alcotest.run "linalg"
    [ ( "vec",
        [ Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "pos/neg parts" `Quick test_vec_parts;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "dist_inf" `Quick test_vec_dist;
          Alcotest.test_case "errors" `Quick test_vec_errors ] );
      ( "dense",
        [ Alcotest.test_case "mul" `Quick test_dense_mul;
          Alcotest.test_case "transpose/gram" `Quick test_dense_transpose_gram ] );
      ( "lu",
        [ Alcotest.test_case "solve 2x2" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "det/inverse" `Quick test_lu_det_inverse;
          Alcotest.test_case "random roundtrip" `Quick test_lu_random_roundtrip ] );
      ( "tridiag",
        [ Alcotest.test_case "thomas vs lu" `Quick test_tridiag_solve_vs_lu;
          Alcotest.test_case "pivoting hard case" `Quick test_tridiag_pivoting_hard;
          Alcotest.test_case "prefactored solves" `Quick test_tridiag_prefactored;
          Alcotest.test_case "identity" `Quick test_tridiag_mul_identity;
          Alcotest.test_case "scale/shift" `Quick test_tridiag_scale_shift ] );
      ( "sparse",
        [ Alcotest.test_case "coo duplicates" `Quick test_coo_duplicates;
          Alcotest.test_case "mul vs dense" `Quick test_csr_mul_vs_dense;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "add_mul" `Quick test_csr_add_mul;
          Alcotest.test_case "identity/rows" `Quick test_csr_identity_row_entries;
          Alcotest.test_case "validation" `Quick test_csr_validation ] );
      ( "blocks",
        [ Alcotest.test_case "vs explicit E" `Quick test_blocks_vs_e_matrix;
          Alcotest.test_case "shifted solve" `Quick test_blocks_solve_shifted;
          Alcotest.test_case "sparse solve" `Quick test_blocks_solve_sparse;
          Alcotest.test_case "mismatch/average" `Quick test_blocks_mismatch_average;
          Alcotest.test_case "validation" `Quick test_blocks_validation ] );
      ( "eig",
        [ Alcotest.test_case "diagonal" `Quick test_power_iteration_diag;
          Alcotest.test_case "symmetric" `Quick test_power_iteration_symmetric ] );
      ("properties", qsuite) ]
