(* Tests for blockage (fixed obstacle) support across the stack: geometry,
   legality, row segments, the segment-shifted model, and all legalizers. *)

open Mclh_linalg
open Mclh_circuit
open Mclh_benchgen
open Mclh_core

let cell ?rail ~id ~w ~h () = Cell.make ~id ~width:w ~height:h ?bottom_rail:rail ()

let test_blockage_geometry () =
  let b = Blockage.make ~row:2 ~height:2 ~x:10 ~width:5 in
  Alcotest.(check int) "area" 10 (Blockage.area b);
  Alcotest.(check bool) "covers row" true (Blockage.covers_row b 3);
  Alcotest.(check bool) "not row 4" false (Blockage.covers_row b 4);
  Alcotest.(check bool) "overlap" true
    (Blockage.overlaps_span b ~row:3 ~height:1 ~x:12.0 ~width:4);
  Alcotest.(check bool) "touch is no overlap" false
    (Blockage.overlaps_span b ~row:3 ~height:1 ~x:15.0 ~width:4);
  Alcotest.(check bool) "different rows" false
    (Blockage.overlaps_span b ~row:0 ~height:2 ~x:12.0 ~width:4);
  Alcotest.(check bool) "validation" true
    (try
       ignore (Blockage.make ~row:0 ~height:0 ~x:0 ~width:1);
       false
     with Invalid_argument _ -> true)

let blocked_design () =
  (* 4 rows x 30 sites, one blockage in the middle of rows 1-2 *)
  let chip = Chip.make ~num_rows:4 ~num_sites:30 () in
  let blockages = [| Blockage.make ~row:1 ~height:2 ~x:12 ~width:6 |] in
  let cells =
    [| cell ~id:0 ~w:4 ~h:1 ();
       cell ~id:1 ~w:4 ~h:1 ();
       cell ~rail:Rail.Vdd ~id:2 ~w:3 ~h:2 () |]
  in
  Design.make ~blockages ~name:"blocked" ~chip ~cells
    ~global:(Placement.make ~xs:[| 10.0; 16.0; 13.0 |] ~ys:[| 1.0; 1.0; 1.0 |])
    ~nets:(Netlist.empty ~num_cells:3)
    ()

let test_legality_blocked () =
  let d = blocked_design () in
  (* cell 0 placed inside the blockage *)
  let pl = Placement.make ~xs:[| 13.0; 20.0; 1.0 |] ~ys:[| 1.0; 1.0; 1.0 |] in
  let v = Legality.check d pl in
  Alcotest.(check bool) "blocked violation" true
    (List.exists (function Legality.Blocked (0, 0) -> true | _ -> false) v);
  (* legal spots on both sides of the blockage *)
  let ok = Placement.make ~xs:[| 2.0; 20.0; 25.0 |] ~ys:[| 1.0; 1.0; 1.0 |] in
  Alcotest.(check bool) "clear placement legal" true (Legality.is_legal d ok)

let test_design_capacity () =
  let d = blocked_design () in
  Alcotest.(check int) "free capacity" (120 - 12) (Design.free_capacity d)

let test_segments () =
  let d = blocked_design () in
  let segs = Segments.compute d in
  Alcotest.(check bool) "has blockages" true (Segments.has_blockages segs);
  (match Segments.row_segments segs 1 with
  | [ a; b ] ->
    Alcotest.(check int) "left start" 0 a.Segments.start;
    Alcotest.(check int) "left stop" 12 a.Segments.stop;
    Alcotest.(check int) "right start" 18 b.Segments.start;
    Alcotest.(check int) "right stop" 30 b.Segments.stop
  | l -> Alcotest.failf "expected 2 segments in row 1, got %d" (List.length l));
  (match Segments.row_segments segs 0 with
  | [ a ] ->
    Alcotest.(check int) "full row" 0 a.Segments.start;
    Alcotest.(check int) "full row stop" 30 a.Segments.stop
  | l -> Alcotest.failf "expected 1 segment in row 0, got %d" (List.length l));
  (* locate: wide target near the blockage goes to the side that fits *)
  (match Segments.locate segs ~row:1 ~x:11.0 ~width:4 with
  | Some seg -> Alcotest.(check int) "left side" 0 seg.Segments.start
  | None -> Alcotest.fail "expected a segment");
  (match Segments.locate segs ~row:1 ~x:16.0 ~width:4 with
  | Some seg -> Alcotest.(check int) "right side" 18 seg.Segments.start
  | None -> Alcotest.fail "expected a segment")

let test_model_shifts () =
  let d = blocked_design () in
  let m = Model.build d (Row_assign.assign d) in
  (* cell 1 (gx 16, width 4) is pushed to the right segment: shift 18;
     cell 0 (gx 10) stays in the left segment: shift 0 *)
  Alcotest.(check (float 0.0)) "cell0 shift" 0.0 m.Model.shift.(m.Model.first_var.(0));
  Alcotest.(check (float 0.0)) "cell1 shift" 18.0 m.Model.shift.(m.Model.first_var.(1));
  (* cells 0 and 1 are in different segments: no ordering constraint links
     them directly; cell 2 (double, gx 13, w 3) picks a side *)
  let legal = Flow.legalize d in
  Alcotest.(check bool) "flow legal with blockage" true (Legality.is_legal d legal)

let test_no_blockage_shifts_zero () =
  let inst = Generate.generate (Spec.scaled 0.003 (Spec.find "fft_2")) in
  let d = inst.Generate.design in
  let m = Model.build d (Row_assign.assign d) in
  Alcotest.(check (float 0.0)) "all shifts zero" 0.0 (Vec.norm_inf m.Model.shift)

let gen_blocked name =
  Generate.generate
    ~options:{ Generate.default_options with blockage_fraction = 0.15 }
    (Spec.scaled 0.008 (Spec.find name))

let test_generator_blockages () =
  let inst = gen_blocked "fft_2" in
  let d = inst.Generate.design in
  Alcotest.(check bool) "blockages present" true (Array.length d.Design.blockages > 0);
  Alcotest.(check bool) "reference legal" true
    (Legality.is_legal d inst.Generate.reference);
  (* free density close to the spec despite the blocked area *)
  Alcotest.(check bool)
    (Printf.sprintf "density %.3f near 0.50" (Design.density d))
    true
    (Float.abs (Design.density d -. 0.50) < 0.12)

let test_all_legalizers_with_blockages () =
  let inst = gen_blocked "fft_1" in
  let d = inst.Generate.design in
  List.iter
    (fun alg ->
      let r = Runner.run alg d in
      Alcotest.(check bool) (Runner.name alg ^ " legal") true r.Runner.legal)
    Runner.all

let test_solver_oracle_with_blockages () =
  (* the segment-shifted QP must still match the dense oracle *)
  let inst =
    Generate.generate
      ~options:{ Generate.default_options with blockage_fraction = 0.2 }
      (Spec.scaled 0.0008 (Spec.find "fft_2"))
  in
  let d = inst.Generate.design in
  let m = Model.build d (Row_assign.assign d) in
  let config = { Config.default with eps = 1e-10; max_iter = 500_000 } in
  let res = Solver.solve ~config m in
  Alcotest.(check bool) "converged" true res.Solver.converged;
  let qp = Model.to_qp m ~lambda:config.Config.lambda in
  let oracle = Mclh_qp.Active_set.solve ~x0:(Model.packed_start m) qp in
  Alcotest.(check bool) "oracle converged" true oracle.Mclh_qp.Active_set.converged;
  let o1 = Mclh_qp.Qp.objective qp res.Solver.x in
  let o2 = Mclh_qp.Qp.objective qp oracle.Mclh_qp.Active_set.x in
  if Float.abs (o1 -. o2) > 1e-4 *. Float.max 1.0 (Float.abs o2) then
    Alcotest.failf "objective %.8f vs oracle %.8f" o1 o2

let test_io_roundtrip_blockages () =
  let inst = gen_blocked "fft_a" in
  let d = inst.Generate.design in
  let path = Filename.temp_file "mclh" ".design" in
  Io.write_design ~path d;
  let d2 = Io.read_design ~path in
  Sys.remove path;
  Alcotest.(check int) "blockage count"
    (Array.length d.Design.blockages)
    (Array.length d2.Design.blockages);
  Alcotest.(check bool) "same placement" true
    (Placement.equal d.Design.global d2.Design.global);
  Alcotest.(check int) "same cells" (Design.num_cells d) (Design.num_cells d2)

let test_refine_with_blockages () =
  let inst = gen_blocked "fft_2" in
  let d = inst.Generate.design in
  let legal = Flow.legalize d in
  let refined, stats = Mclh_refine.Refine.run d legal in
  Alcotest.(check bool) "legal" true (Legality.is_legal d refined);
  Alcotest.(check bool) "not worse" true
    (stats.Mclh_refine.Refine.hpwl_after
     <= stats.Mclh_refine.Refine.hpwl_before +. 1e-9)

let test_svg_draws_blockages () =
  let d = blocked_design () in
  let pl = Placement.make ~xs:[| 2.0; 20.0; 25.0 |] ~ys:[| 1.0; 1.0; 1.0 |] in
  let svg = Svg.render d pl in
  let contains needle =
    let nl = String.length needle and sl = String.length svg in
    let rec go i = i + nl <= sl && (String.sub svg i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "blockage color present" true (contains "#555555")

let qc_flow_legal_with_blockages =
  QCheck.Test.make ~count:15
    ~name:"flow: legal output with random blockages"
    QCheck.(pair (int_range 1 10_000) (int_range 0 19))
    (fun (seed, bench_idx) ->
      let name = List.nth Spec.names bench_idx in
      let inst =
        Generate.generate
          ~options:
            { Generate.default_options with seed; blockage_fraction = 0.1 }
          (Spec.scaled 0.003 (Spec.find name))
      in
      let d = inst.Generate.design in
      Legality.is_legal d (Flow.legalize d))

let () =
  Alcotest.run "blockage"
    [ ( "geometry",
        [ Alcotest.test_case "basics" `Quick test_blockage_geometry;
          Alcotest.test_case "legality" `Quick test_legality_blocked;
          Alcotest.test_case "capacity" `Quick test_design_capacity ] );
      ( "segments",
        [ Alcotest.test_case "compute/locate" `Quick test_segments;
          Alcotest.test_case "model shifts" `Quick test_model_shifts;
          Alcotest.test_case "no blockages = no shifts" `Quick
            test_no_blockage_shifts_zero ] );
      ( "end to end",
        [ Alcotest.test_case "generator" `Quick test_generator_blockages;
          Alcotest.test_case "all legalizers" `Quick test_all_legalizers_with_blockages;
          Alcotest.test_case "solver vs oracle" `Slow test_solver_oracle_with_blockages;
          Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip_blockages;
          Alcotest.test_case "refine" `Quick test_refine_with_blockages;
          Alcotest.test_case "svg" `Quick test_svg_draws_blockages ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qc_flow_legal_with_blockages ] ) ]
