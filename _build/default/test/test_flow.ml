(* End-to-end tests: the complete MMSIM flow, the baseline legalizers, the
   runner, the Section 5.3 optimality equality, and flow-level property
   tests on random instances. *)

open Mclh_circuit
open Mclh_core
open Mclh_benchgen

let generate ?(options = Generate.default_options) name scale =
  Generate.generate ~options (Spec.scaled scale (Spec.find name))

let check_legal what d pl =
  let v = Legality.check d pl in
  if v <> [] then begin
    List.iteri
      (fun i viol ->
        if i < 5 then Format.eprintf "  %a@." Legality.pp_violation viol)
      v;
    Alcotest.failf "%s: %d legality violations" what (List.length v)
  end

let test_flow_legal_across_suite () =
  List.iter
    (fun name ->
      let inst = generate name 0.005 in
      let d = inst.Generate.design in
      let res = Flow.run d in
      check_legal (name ^ " mmsim flow") d res.Flow.legal)
    [ "des_perf_1"; "des_perf_a"; "fft_1"; "fft_2"; "pci_bridge32_b";
      "matrix_mult_b"; "superblue14" ]

let test_flow_preserves_order () =
  let inst = generate "fft_2" 0.01 in
  let d = inst.Generate.design in
  let res = Flow.run d in
  let pres = Order.preservation d res.Flow.legal in
  Alcotest.(check bool)
    (Printf.sprintf "order preservation %.4f >= 0.99" pres)
    true (pres >= 0.99)

let test_flow_beats_reference_displacement () =
  (* the flow's displacement must not exceed the (non-optimized) reference
     packing displacement: the reference is a feasible solution of the same
     problem *)
  let inst = generate "fft_2" 0.01 in
  let d = inst.Generate.design in
  let rh = d.Design.chip.Chip.row_height in
  let res = Flow.run d in
  let flow_disp =
    (Metrics.displacement ~row_height:rh ~before:d.Design.global res.Flow.legal)
      .Metrics.total_manhattan
  in
  let ref_disp =
    (Metrics.displacement ~row_height:rh ~before:d.Design.global
       inst.Generate.reference)
      .Metrics.total_manhattan
  in
  Alcotest.(check bool)
    (Printf.sprintf "flow %.1f <= reference %.1f" flow_disp ref_disp)
    true
    (flow_disp <= ref_disp +. 1e-6)

let test_zero_noise_perfect_preservation () =
  (* with no x noise the global order has no inversions, so the flow must
     preserve it exactly *)
  let options =
    { Generate.default_options with noise_x_sigma = 0.0; hotspot_strength = 0.0 }
  in
  let inst = generate ~options "fft_2" 0.008 in
  let d = inst.Generate.design in
  let res = Flow.run d in
  Alcotest.(check (float 1e-9)) "perfect preservation" 1.0
    (Order.preservation d res.Flow.legal)

let test_baselines_legal () =
  let inst = generate "fft_1" 0.01 in
  let d = inst.Generate.design in
  List.iter
    (fun alg ->
      let r = Runner.run alg d in
      Alcotest.(check bool) (Runner.name alg ^ " legal") true r.Runner.legal)
    Runner.all

let test_runner_names () =
  List.iter
    (fun alg ->
      match Runner.of_name (Runner.name alg) with
      | Some a -> Alcotest.(check string) "roundtrip" (Runner.name alg) (Runner.name a)
      | None -> Alcotest.fail "name roundtrip failed")
    Runner.all;
  Alcotest.(check bool) "unknown name" true (Runner.of_name "nope" = None)

(* Section 5.3: on single-height designs with the right boundary relaxed,
   the MMSIM and Abacus PlaceRow give the same total displacement. *)
let test_sec53_mmsim_equals_placerow () =
  List.iter
    (fun name ->
      let options = { Generate.default_options with single_height_only = true } in
      let inst = generate ~options name 0.005 in
      let d = inst.Generate.design in
      let rh = d.Design.chip.Chip.row_height in
      let config = { Config.default with eps = 1e-9; max_iter = 200_000 } in
      let fa = Flow.run ~config d in
      let assignment = Row_assign.assign d in
      let pb = Abacus.legalize_fixed_rows d assignment in
      let pb_legal = (Tetris_alloc.run d pb).Tetris_alloc.placement in
      let da =
        (Metrics.displacement ~row_height:rh ~before:d.Design.global fa.Flow.legal)
          .Metrics.total_manhattan
      and db =
        (Metrics.displacement ~row_height:rh ~before:d.Design.global pb_legal)
          .Metrics.total_manhattan
      in
      if Float.abs (da -. db) > 1e-6 *. Float.max 1.0 db then
        Alcotest.failf "%s: mmsim %.6f vs placerow %.6f" name da db)
    [ "fft_2"; "pci_bridge32_b"; "des_perf_a" ]

let test_abacus_full_single_height () =
  let options = { Generate.default_options with single_height_only = true } in
  let inst = generate ~options "pci_bridge32_b" 0.01 in
  let d = inst.Generate.design in
  let pl = Abacus.legalize_single_height d in
  let legal = (Tetris_alloc.run d pl).Tetris_alloc.placement in
  check_legal "full abacus" d legal

let test_abacus_rejects_mixed () =
  let inst = generate "fft_2" 0.005 in
  Alcotest.(check bool) "multi-row rejected" true
    (try
       ignore (Abacus.legalize_single_height inst.Generate.design);
       false
     with Invalid_argument _ -> true)

let test_flow_stats_consistency () =
  let inst = generate "fft_2" 0.01 in
  let d = inst.Generate.design in
  let res = Flow.run d in
  Alcotest.(check bool) "timings positive" true (res.Flow.timings.Flow.total_s >= 0.0);
  Alcotest.(check bool) "iterations positive" true (res.Flow.solver.Solver.iterations > 0);
  Alcotest.(check int) "illegal_after_mmsim consistent"
    res.Flow.alloc.Tetris_alloc.illegal_before
    (Flow.illegal_after_mmsim res)

let test_flow_dhpwl_small () =
  (* legalization must not blow up wirelength on a moderate instance *)
  let inst = generate "matrix_mult_b" 0.01 in
  let d = inst.Generate.design in
  let rh = d.Design.chip.Chip.row_height in
  let res = Flow.run d in
  let dh = Hpwl.delta ~row_height:rh d.Design.nets ~before:d.Design.global res.Flow.legal in
  Alcotest.(check bool)
    (Printf.sprintf "dHPWL %.4f%% below 5%%" (100.0 *. dh))
    true
    (dh < 0.05)

let test_mmsim_beats_tetris () =
  (* the headline qualitative claim on a dense instance *)
  let inst = generate "des_perf_1" 0.01 in
  let d = inst.Generate.design in
  let ours = Runner.run Runner.Mmsim d in
  let tetris = Runner.run Runner.Tetris d in
  Alcotest.(check bool)
    (Printf.sprintf "mmsim %.0f <= tetris %.0f"
       ours.Runner.displacement.Metrics.total_manhattan
       tetris.Runner.displacement.Metrics.total_manhattan)
    true
    (ours.Runner.displacement.Metrics.total_manhattan
     <= tetris.Runner.displacement.Metrics.total_manhattan)

let test_config_validation () =
  Alcotest.(check bool) "beta out of range" true
    (match Config.validate { Config.default with beta = 2.5 } with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "default valid" true
    (match Config.validate Config.default with Ok _ -> true | Error _ -> false);
  Alcotest.(check bool) "solver rejects bad config" true
    (try
       let inst = generate "fft_a" 0.002 in
       let m = Model.build inst.Generate.design (Row_assign.assign inst.Generate.design) in
       ignore (Solver.solve ~config:{ Config.default with lambda = -1.0 } m);
       false
     with Invalid_argument _ -> true)

(* property: the flow output is legal for random small instances of every
   benchmark shape and any seed *)
let qc_flow_always_legal =
  QCheck.Test.make ~count:20 ~name:"flow: legal output on random instances"
    QCheck.(pair (int_range 1 10_000) (int_range 0 19))
    (fun (seed, bench_idx) ->
      let name = List.nth Spec.names bench_idx in
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.002 (Spec.find name))
      in
      let d = inst.Generate.design in
      let res = Flow.run d in
      Legality.is_legal d res.Flow.legal)

let qc_baselines_always_legal =
  QCheck.Test.make ~count:12 ~name:"baselines: legal output on random instances"
    QCheck.(pair (int_range 1 10_000) (int_range 0 3))
    (fun (seed, alg_idx) ->
      let alg = List.nth Runner.all (alg_idx + 1) in
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.003 (Spec.find "fft_2"))
      in
      (Runner.run alg inst.Generate.design).Runner.legal)

let () =
  Alcotest.run "flow"
    [ ( "mmsim flow",
        [ Alcotest.test_case "legal across suite" `Slow test_flow_legal_across_suite;
          Alcotest.test_case "order preserved" `Quick test_flow_preserves_order;
          Alcotest.test_case "zero noise: perfect preservation" `Quick
            test_zero_noise_perfect_preservation;
          Alcotest.test_case "beats reference packing" `Quick
            test_flow_beats_reference_displacement;
          Alcotest.test_case "stats consistency" `Quick test_flow_stats_consistency;
          Alcotest.test_case "dHPWL small" `Quick test_flow_dhpwl_small ] );
      ( "baselines",
        [ Alcotest.test_case "all legal" `Quick test_baselines_legal;
          Alcotest.test_case "runner names" `Quick test_runner_names;
          Alcotest.test_case "full abacus" `Quick test_abacus_full_single_height;
          Alcotest.test_case "abacus rejects mixed" `Quick test_abacus_rejects_mixed;
          Alcotest.test_case "mmsim beats tetris" `Quick test_mmsim_beats_tetris ] );
      ( "section 5.3",
        [ Alcotest.test_case "mmsim = placerow" `Slow test_sec53_mmsim_equals_placerow ] );
      ("config", [ Alcotest.test_case "validation" `Quick test_config_validation ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qc_flow_always_legal; qc_baselines_always_legal ] ) ]
