(* Tests for the conjugate-gradient solver and the analytical global
   placer. *)

open Mclh_linalg
open Mclh_circuit
open Mclh_benchgen

let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* ---------- CG ---------- *)

let random_spd rand n =
  let m = Dense.init n n (fun _ _ -> rand () -. 0.5) in
  let a = Dense.gram m in
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i +. 2.0)
  done;
  a

let test_cg_matches_lu () =
  let rand = mk_rand 3 in
  List.iter
    (fun n ->
      let a = random_spd rand n in
      let b = Vec.init n (fun _ -> rand () *. 4.0 -. 2.0) in
      let cg = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
      Alcotest.(check bool) "converged" true cg.Cg.converged;
      let x_ref = Lu.solve_system a b in
      if not (Vec.equal ~eps:1e-6 cg.Cg.x x_ref) then
        Alcotest.failf "CG vs LU mismatch at n = %d" n)
    [ 1; 2; 5; 12; 30 ]

let test_cg_jacobi () =
  let rand = mk_rand 7 in
  let n = 20 in
  let a = random_spd rand n in
  (* skew the diagonal so preconditioning matters *)
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i *. float_of_int (1 + (i mod 5)))
  done;
  let b = Vec.init n (fun _ -> rand ()) in
  let diag = Vec.init n (fun i -> Dense.get a i i) in
  let plain = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
  let pre = Cg.solve ~jacobi:diag ~dim:n (Dense.mul_vec a) ~b in
  Alcotest.(check bool) "both converge" true (plain.Cg.converged && pre.Cg.converged);
  Alcotest.(check bool) "same solution" true (Vec.equal ~eps:1e-5 plain.Cg.x pre.Cg.x);
  Alcotest.(check bool) "preconditioning not slower" true
    (pre.Cg.iterations <= plain.Cg.iterations + 2)

let test_cg_warm_start () =
  let rand = mk_rand 11 in
  let n = 10 in
  let a = random_spd rand n in
  let b = Vec.init n (fun _ -> rand ()) in
  let first = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
  let second = Cg.solve ~x0:first.Cg.x ~dim:n (Dense.mul_vec a) ~b in
  Alcotest.(check bool) "immediate" true (second.Cg.iterations <= 1)

let test_cg_validation () =
  Alcotest.(check bool) "bad jacobi" true
    (try
       ignore (Cg.solve ~jacobi:(Vec.zeros 2) ~dim:2 (fun v -> v) ~b:(Vec.zeros 2));
       false
     with Invalid_argument _ -> true)

(* ---------- Gp ---------- *)

let design_for name scale =
  (Generate.generate (Spec.scaled scale (Spec.find name))).Generate.design

let test_gp_basics () =
  let d = design_for "fft_2" 0.01 in
  let gp, stats = Mclh_gp.Gp.place d in
  Alcotest.(check int) "rounds recorded"
    Mclh_gp.Gp.default_options.Mclh_gp.Gp.iterations
    (List.length stats.Mclh_gp.Gp.rounds);
  (* in bounds *)
  let chip = d.Design.chip in
  Array.iteri
    (fun i (c : Cell.t) ->
      let x = gp.Placement.xs.(i) and y = gp.Placement.ys.(i) in
      if
        x < 0.0
        || x +. float_of_int c.Cell.width > float_of_int chip.Chip.num_sites
        || y < 0.0
        || y +. float_of_int c.Cell.height > float_of_int chip.Chip.num_rows
      then Alcotest.failf "cell %d out of bounds" i)
    d.Design.cells;
  (* wirelength sanity: far below a deliberately scattered placement *)
  let rand = mk_rand 13 in
  let scattered =
    Placement.make
      ~xs:(Array.init (Design.num_cells d) (fun _ ->
               rand () *. float_of_int (chip.Chip.num_sites - 12)))
      ~ys:(Array.init (Design.num_cells d) (fun _ ->
               rand () *. float_of_int (chip.Chip.num_rows - 4)))
  in
  let rh = chip.Chip.row_height in
  let h_gp = Hpwl.total ~row_height:rh d.Design.nets gp in
  let h_rand = Hpwl.total ~row_height:rh d.Design.nets scattered in
  Alcotest.(check bool)
    (Printf.sprintf "gp %.0f < scattered %.0f" h_gp h_rand)
    true (h_gp < h_rand)

let test_gp_deterministic () =
  let d = design_for "fft_a" 0.01 in
  let gp1, _ = Mclh_gp.Gp.place d in
  let gp2, _ = Mclh_gp.Gp.place d in
  Alcotest.(check bool) "deterministic" true (Placement.equal gp1 gp2)

let test_gp_output_legalizes () =
  List.iter
    (fun name ->
      let d0 = design_for name 0.01 in
      let gp, _ = Mclh_gp.Gp.place d0 in
      let d =
        Design.make ~blockages:d0.Design.blockages ~name:"gp" ~chip:d0.Design.chip
          ~cells:d0.Design.cells ~global:gp ~nets:d0.Design.nets ()
      in
      let legal = Mclh_core.Flow.legalize d in
      Alcotest.(check bool) (name ^ " legalizes") true (Legality.is_legal d legal))
    [ "fft_2"; "pci_bridge32_b" ]

let test_gp_b2b_model () =
  let d = design_for "fft_a" 0.01 in
  let options = { Mclh_gp.Gp.default_options with net_model = Mclh_gp.Gp.B2b } in
  let gp, stats = Mclh_gp.Gp.place ~options d in
  Alcotest.(check bool) "finite hpwl" true
    (Float.is_finite stats.Mclh_gp.Gp.final_hpwl);
  (* B2B output is a usable global placement too *)
  let d2 =
    Design.make ~name:"b2b" ~chip:d.Design.chip ~cells:d.Design.cells
      ~global:gp ~nets:d.Design.nets ()
  in
  let legal = Mclh_core.Flow.legalize d2 in
  Alcotest.(check bool) "legalizes" true (Legality.is_legal d2 legal);
  (* and it differs from the clique solution (different model) *)
  let gp_clique, _ = Mclh_gp.Gp.place d in
  Alcotest.(check bool) "distinct model" false (Placement.equal gp gp_clique)

let test_gp_no_nets () =
  (* without nets, cells settle at their (staggered center) anchors *)
  let chip = Chip.make ~num_rows:4 ~num_sites:40 () in
  let cells = Array.init 3 (fun id -> Cell.make ~id ~width:3 ~height:1 ()) in
  let d =
    Design.make ~name:"isolated" ~chip ~cells
      ~global:(Placement.create 3)
      ~nets:(Netlist.empty ~num_cells:3)
      ()
  in
  let gp, stats = Mclh_gp.Gp.place d in
  Alcotest.(check (float 1e-9)) "no wirelength" 0.0 stats.Mclh_gp.Gp.final_hpwl;
  Array.iter
    (fun x -> Alcotest.(check bool) "near center" true (Float.abs (x -. 20.0) < 8.0))
    gp.Placement.xs

let () =
  Alcotest.run "gp"
    [ ( "cg",
        [ Alcotest.test_case "matches LU" `Quick test_cg_matches_lu;
          Alcotest.test_case "jacobi" `Quick test_cg_jacobi;
          Alcotest.test_case "warm start" `Quick test_cg_warm_start;
          Alcotest.test_case "validation" `Quick test_cg_validation ] );
      ( "placer",
        [ Alcotest.test_case "basics" `Quick test_gp_basics;
          Alcotest.test_case "deterministic" `Quick test_gp_deterministic;
          Alcotest.test_case "output legalizes" `Quick test_gp_output_legalizes;
          Alcotest.test_case "b2b model" `Quick test_gp_b2b_model;
          Alcotest.test_case "no nets" `Quick test_gp_no_nets ] ) ]
