test/test_qp.ml: Active_set Alcotest Array Coo Csr Ipm Kkt List Mclh_lcp Mclh_linalg Mclh_qp QCheck QCheck_alcotest Qp Vec
