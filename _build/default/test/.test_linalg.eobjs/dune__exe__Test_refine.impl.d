test/test_refine.ml: Alcotest Array Cell Chip Design Flow Generate Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_refine Netlist Placement Printf QCheck QCheck_alcotest Refine Spec
