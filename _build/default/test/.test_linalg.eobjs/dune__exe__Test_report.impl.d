test/test_report.ml: Alcotest Csv Filename In_channel List Mclh_report Option String Sys Table
