test/test_lcp.ml: Alcotest Array Coo Dense Float Lcp Lemke List Mclh_lcp Mclh_linalg Mmsim Pgs Printf QCheck QCheck_alcotest Vec
