test/test_circuit.ml: Alcotest Array Cell Chip Design Hpwl Legality List Mclh_circuit Metrics Netlist Placement Rail String Svg
