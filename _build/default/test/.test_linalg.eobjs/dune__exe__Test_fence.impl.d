test/test_fence.ml: Alcotest Array Blockage Cell Chip Design Fence Filename Flow Format Io Legality List Mclh_benchgen Mclh_circuit Mclh_core Netlist Placement Rail Region Runner Sys
