test/test_qp.mli:
