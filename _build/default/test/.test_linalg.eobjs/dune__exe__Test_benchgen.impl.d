test/test_benchgen.ml: Alcotest Array Cell Chip Design Float Generate Hpwl Legality List Mclh_benchgen Mclh_circuit Netlist Placement QCheck QCheck_alcotest Rail Rng Spec
