test/test_lcp.mli:
