test/test_fence.mli:
