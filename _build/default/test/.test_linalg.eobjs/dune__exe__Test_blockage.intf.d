test/test_blockage.mli:
