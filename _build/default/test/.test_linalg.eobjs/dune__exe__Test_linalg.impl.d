test/test_linalg.ml: Alcotest Array Blocks Coo Csr Dense Eig Float List Lu Mclh_linalg QCheck QCheck_alcotest Tridiag Vec
