test/test_gp.ml: Alcotest Array Cell Cg Chip Dense Design Float Generate Hpwl Legality List Lu Mclh_benchgen Mclh_circuit Mclh_core Mclh_gp Mclh_linalg Netlist Placement Printf Spec Vec
