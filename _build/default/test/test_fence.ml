(* Tests for fence regions: geometry, legality semantics, and the
   territorial decomposition legalizer. *)

open Mclh_circuit
open Mclh_core

let rect row height x width = { Region.row; height; x; width }

let test_region_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Region.make ~name:"r" []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Region.make ~name:"r" [ rect 0 2 0 10; rect 1 2 5 10 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "degenerate rejected" true
    (try
       ignore (Region.make ~name:"r" [ rect 0 0 0 10 ]);
       false
     with Invalid_argument _ -> true)

let l_region () =
  (* an L: rows 2-5 sites 10-26, plus rows 2-3 sites 26-36 *)
  Region.make ~name:"L" [ rect 2 4 10 16; rect 2 2 26 10 ]

let test_region_contains () =
  let r = l_region () in
  Alcotest.(check bool) "inside tall arm" true
    (Region.contains_span r ~row:3 ~height:2 ~x:12.0 ~width:6);
  Alcotest.(check bool) "inside flat arm" true
    (Region.contains_span r ~row:2 ~height:1 ~x:28.0 ~width:6);
  (* spanning the junction of the two rectangles is inside the union *)
  Alcotest.(check bool) "across the junction" true
    (Region.contains_span r ~row:2 ~height:2 ~x:20.0 ~width:12);
  (* the junction only exists in rows 2-3; row 4 does not reach x 26+ *)
  Alcotest.(check bool) "row 4 stops at 26" false
    (Region.contains_span r ~row:4 ~height:1 ~x:20.0 ~width:12);
  Alcotest.(check bool) "outside" false
    (Region.contains_span r ~row:0 ~height:1 ~x:12.0 ~width:4);
  Alcotest.(check bool) "half out" false
    (Region.contains_span r ~row:2 ~height:1 ~x:8.0 ~width:6)

let test_region_intersects () =
  let r = l_region () in
  Alcotest.(check bool) "overlapping edge" true
    (Region.intersects_span r ~row:2 ~height:1 ~x:8.0 ~width:4);
  Alcotest.(check bool) "fully outside" false
    (Region.intersects_span r ~row:0 ~height:2 ~x:0.0 ~width:9)

let test_complement_tiles_chip () =
  (* region blockages + complement blockages together cover the chip with
     no overlap: total area must equal the chip capacity *)
  let chip = Chip.make ~num_rows:8 ~num_sites:60 () in
  let r = l_region () in
  let total =
    List.fold_left
      (fun acc b -> acc + Blockage.area b)
      0
      (Region.to_blockages r @ Region.complement_blockages r chip)
  in
  Alcotest.(check int) "tiles the chip" (Chip.capacity chip) total

let fenced_design () =
  let chip = Chip.make ~num_rows:8 ~num_sites:60 () in
  let fence = l_region () in
  let cells = ref [] and xs = ref [] and ys = ref [] in
  let next = ref 0 in
  let add ?rail ?region w h x y =
    cells :=
      Cell.make ~id:!next ~width:w ~height:h ?bottom_rail:rail ?region ()
      :: !cells;
    incr next;
    xs := x :: !xs;
    ys := y :: !ys
  in
  add ~region:0 4 1 12.0 2.3;
  add ~region:0 4 1 8.0 3.1;
  add ~region:0 ~rail:Rail.Vss 3 2 14.0 2.0;
  add ~region:0 5 1 28.0 2.6;
  add ~region:0 4 1 30.0 3.4;
  add ~region:0 6 1 16.0 4.2;
  for i = 0 to 19 do
    add 4 1 (float_of_int (3 * i)) (float_of_int (i mod 8))
  done;
  let cells = Array.of_list (List.rev !cells) in
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  Design.make ~regions:[| fence |] ~name:"fenced" ~chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let test_legality_fence_violations () =
  let d = fenced_design () in
  (* the raw global placement has members outside and strangers inside *)
  let v = Legality.check d d.Design.global in
  Alcotest.(check bool) "member outside flagged" true
    (List.exists (function Legality.Outside_region _ -> true | _ -> false) v);
  Alcotest.(check bool) "stranger inside flagged" true
    (List.exists (function Legality.In_foreign_region _ -> true | _ -> false) v)

let test_fence_legalize () =
  let d = fenced_design () in
  let legal, stats = Fence.legalize d in
  Alcotest.(check int) "two territories" 2 stats.Fence.territories;
  let v = Legality.check d legal in
  if v <> [] then begin
    List.iteri
      (fun i viol ->
        if i < 5 then Format.eprintf "  %a@." Legality.pp_violation viol)
      v;
    Alcotest.failf "%d violations" (List.length v)
  end

let test_fence_no_regions_is_flow () =
  let inst =
    Mclh_benchgen.Generate.generate
      (Mclh_benchgen.Spec.scaled 0.003 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let d = inst.Mclh_benchgen.Generate.design in
  let via_fence, stats = Fence.legalize d in
  let via_flow = Flow.legalize d in
  Alcotest.(check int) "one territory" 1 stats.Fence.territories;
  Alcotest.(check bool) "identical result" true
    (Placement.equal via_fence via_flow)

let test_design_rejects_bad_region_index () =
  let chip = Chip.make ~num_rows:4 ~num_sites:20 () in
  Alcotest.(check bool) "out-of-range region" true
    (try
       ignore
         (Design.make ~regions:[||] ~name:"bad" ~chip
            ~cells:[| Cell.make ~id:0 ~width:2 ~height:1 ~region:3 () |]
            ~global:(Placement.create 1)
            ~nets:(Netlist.empty ~num_cells:1)
            ());
       false
     with Invalid_argument _ -> true)

let test_fence_two_regions () =
  (* two fences and a default population, all mixed up in the input *)
  let chip = Chip.make ~num_rows:6 ~num_sites:60 () in
  let r0 = Region.make ~name:"a" [ rect 0 2 0 18 ] in
  let r1 = Region.make ~name:"b" [ rect 4 2 40 20 ] in
  let cells = ref [] and xs = ref [] and ys = ref [] in
  let next = ref 0 in
  let add ?region w x y =
    cells := Cell.make ~id:!next ~width:w ~height:1 ?region () :: !cells;
    incr next;
    xs := x :: !xs;
    ys := y :: !ys
  in
  add ~region:0 4 45.0 5.0;
  add ~region:0 4 2.0 0.5;
  add ~region:1 4 1.0 1.0;
  add ~region:1 4 44.0 4.2;
  for i = 0 to 11 do
    add 4 (float_of_int (5 * i)) (float_of_int (2 + (i mod 2)))
  done;
  let cells = Array.of_list (List.rev !cells) in
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let d =
    Design.make ~regions:[| r0; r1 |] ~name:"two" ~chip ~cells
      ~global:(Placement.make ~xs ~ys)
      ~nets:(Netlist.empty ~num_cells:(Array.length cells))
      ()
  in
  let legal, stats = Fence.legalize d in
  Alcotest.(check int) "three territories" 3 stats.Fence.territories;
  Alcotest.(check bool) "legal" true (Legality.is_legal d legal)


let test_generated_fences () =
  List.iter
    (fun (name, fences, blocks) ->
      let options =
        { Mclh_benchgen.Generate.default_options with
          fence_count = fences;
          blockage_fraction = blocks }
      in
      let inst =
        Mclh_benchgen.Generate.generate ~options
          (Mclh_benchgen.Spec.scaled 0.008 (Mclh_benchgen.Spec.find name))
      in
      let d = inst.Mclh_benchgen.Generate.design in
      Alcotest.(check int) (name ^ " fences") fences (Array.length d.Design.regions);
      let members =
        Array.fold_left
          (fun acc (c : Cell.t) -> if c.Cell.region <> None then acc + 1 else acc)
          0 d.Design.cells
      in
      Alcotest.(check bool) (name ^ " has members") true (members > 0);
      Alcotest.(check bool)
        (name ^ " reference honors fences")
        true
        (Legality.is_legal d inst.Mclh_benchgen.Generate.reference);
      let legal, _ = Fence.legalize d in
      Alcotest.(check bool) (name ^ " legalized") true (Legality.is_legal d legal))
    [ ("fft_2", 2, 0.0); ("fft_a", 3, 0.1) ]

let test_io_roundtrip_regions () =
  let options = { Mclh_benchgen.Generate.default_options with fence_count = 2 } in
  let inst =
    Mclh_benchgen.Generate.generate ~options
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let d = inst.Mclh_benchgen.Generate.design in
  let path = Filename.temp_file "mclh_fence" ".mclh" in
  Io.write_design ~path d;
  let d2 = Io.read_design ~path in
  Sys.remove path;
  Alcotest.(check int) "regions" (Array.length d.Design.regions)
    (Array.length d2.Design.regions);
  Array.iteri
    (fun i (c : Cell.t) ->
      if c.Cell.region <> d2.Design.cells.(i).Cell.region then
        Alcotest.failf "cell %d membership lost" i)
    d.Design.cells;
  (* fence semantics survive the roundtrip: the same placement is judged
     identically *)
  let legal, _ = Fence.legalize d2 in
  Alcotest.(check bool) "re-read design legalizes" true
    (Legality.is_legal d2 legal)

let test_runner_uses_fence_path () =
  let options = { Mclh_benchgen.Generate.default_options with fence_count = 1 } in
  let inst =
    Mclh_benchgen.Generate.generate ~options
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let d = inst.Mclh_benchgen.Generate.design in
  let r = Runner.run Runner.Mmsim d in
  Alcotest.(check bool) "legal via runner" true r.Runner.legal;
  Alcotest.(check bool) "fence path (no flow result)" true (r.Runner.mmsim = None)

let () =
  Alcotest.run "fence"
    [ ( "region geometry",
        [ Alcotest.test_case "validation" `Quick test_region_validation;
          Alcotest.test_case "contains (union)" `Quick test_region_contains;
          Alcotest.test_case "intersects" `Quick test_region_intersects;
          Alcotest.test_case "complement tiles chip" `Quick test_complement_tiles_chip ] );
      ( "legality",
        [ Alcotest.test_case "fence violations" `Quick test_legality_fence_violations;
          Alcotest.test_case "bad region index" `Quick test_design_rejects_bad_region_index ] );
      ( "decomposition",
        [ Alcotest.test_case "single fence" `Quick test_fence_legalize;
          Alcotest.test_case "no regions = plain flow" `Quick test_fence_no_regions_is_flow;
          Alcotest.test_case "two fences" `Quick test_fence_two_regions ] );
      ( "generator & io",
        [ Alcotest.test_case "generated fences" `Quick test_generated_fences;
          Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip_regions;
          Alcotest.test_case "runner fence path" `Quick test_runner_uses_fence_path ] ) ]
