(* Tests for the synthetic benchmark generator: determinism, statistical
   fidelity to the Table 1 specs, and feasibility of the reference packing. *)

open Mclh_circuit
open Mclh_benchgen

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same ints" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.of_string "fft_2#1" and d = Rng.of_string "fft_2#1" in
  Alcotest.(check (float 0.0)) "same floats" (Rng.float c 1.0) (Rng.float d 1.0);
  let e = Rng.of_string "fft_2#2" in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.float d 1.0 <> Rng.float e 1.0)

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let f = Rng.float rng 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.failf "float out of range: %g" f;
    let k = Rng.int_in rng (-3) 3 in
    if k < -3 || k > 3 then Alcotest.failf "int_in out of range: %d" k
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.05)

let test_spec_table () =
  Alcotest.(check int) "20 benchmarks" 20 (List.length Spec.all);
  let s = Spec.find "des_perf_1" in
  Alcotest.(check int) "singles" 103842 s.Spec.singles;
  Alcotest.(check int) "doubles" 8802 s.Spec.doubles;
  Alcotest.(check (float 1e-9)) "density" 0.91 s.Spec.density;
  let sb = Spec.find "superblue12" in
  Alcotest.(check int) "largest" 1172586 sb.Spec.singles;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Spec.find "nonexistent");
       false
     with Not_found -> true)

let test_spec_scaled () =
  let s = Spec.scaled 0.01 (Spec.find "fft_2") in
  Alcotest.(check int) "singles scaled" 303 s.Spec.singles;
  Alcotest.(check int) "doubles scaled" 20 s.Spec.doubles;
  Alcotest.(check (float 1e-9)) "density kept" 0.50 s.Spec.density;
  let tiny = Spec.scaled 1e-9 (Spec.find "fft_2") in
  Alcotest.(check int) "at least one single" 1 tiny.Spec.singles

let generate name scale =
  Generate.generate (Spec.scaled scale (Spec.find name))

let test_reference_is_legal () =
  List.iter
    (fun name ->
      let inst = generate name 0.01 in
      let v = Legality.check inst.Generate.design inst.Generate.reference in
      if v <> [] then
        Alcotest.failf "%s: reference packing has %d violations" name
          (List.length v))
    [ "des_perf_1"; "fft_2"; "pci_bridge32_b"; "superblue12" ]

let test_generation_deterministic () =
  let a = generate "fft_2" 0.01 and b = generate "fft_2" 0.01 in
  Alcotest.(check bool) "same global placement" true
    (Placement.equal a.Generate.design.Design.global b.Generate.design.Design.global);
  Alcotest.(check int) "same nets"
    (Netlist.num_nets a.Generate.design.Design.nets)
    (Netlist.num_nets b.Generate.design.Design.nets);
  let c =
    Generate.generate
      ~options:{ Generate.default_options with seed = 2 }
      (Spec.scaled 0.01 (Spec.find "fft_2"))
  in
  Alcotest.(check bool) "different seed differs" false
    (Placement.equal a.Generate.design.Design.global c.Generate.design.Design.global)

let test_density_close_to_spec () =
  List.iter
    (fun (name, expect) ->
      let inst = generate name 0.02 in
      let actual = Design.density inst.Generate.design in
      if Float.abs (actual -. expect) > 0.08 then
        Alcotest.failf "%s: density %.3f vs spec %.3f" name actual expect)
    [ ("des_perf_1", 0.91); ("fft_2", 0.50); ("pci_bridge32_b", 0.14) ]

let test_cell_mix () =
  let inst = generate "fft_2" 0.02 in
  let d = inst.Generate.design in
  let heights = Design.count_by_height d in
  let singles = List.assoc 1 heights and doubles = List.assoc 2 heights in
  Alcotest.(check int) "singles" 606 singles;
  Alcotest.(check int) "doubles" 40 doubles;
  (* doubled cells have both rail polarities *)
  let vdd = ref 0 and vss = ref 0 in
  Array.iter
    (fun (c : Cell.t) ->
      match c.Cell.bottom_rail with
      | Some Rail.Vdd -> incr vdd
      | Some Rail.Vss -> incr vss
      | None -> ())
    d.Design.cells;
  Alcotest.(check bool) "both polarities present" true (!vdd > 0 && !vss > 0)

let test_single_height_mode () =
  let inst =
    Generate.generate
      ~options:{ Generate.default_options with single_height_only = true }
      (Spec.scaled 0.02 (Spec.find "fft_2"))
  in
  Array.iter
    (fun (c : Cell.t) ->
      if c.Cell.height <> 1 then Alcotest.fail "found a multi-row cell")
    inst.Generate.design.Design.cells

let test_global_in_bounds () =
  let inst = generate "des_perf_1" 0.01 in
  let d = inst.Generate.design in
  let chip = d.Design.chip in
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      let x = d.Design.global.Placement.xs.(i)
      and y = d.Design.global.Placement.ys.(i) in
      if
        x < 0.0
        || x +. float_of_int c.Cell.width > float_of_int chip.Chip.num_sites
        || y < 0.0
        || y +. float_of_int c.Cell.height > float_of_int chip.Chip.num_rows
      then Alcotest.failf "cell %d out of bounds in global placement" i)
    d.Design.cells

let test_nets_are_local () =
  let inst = generate "fft_2" 0.02 in
  let d = inst.Generate.design in
  Alcotest.(check bool) "nets exist" true (Netlist.num_nets d.Design.nets > 0);
  (* locality: mean net HPWL well below the chip half-perimeter *)
  let mean_hpwl =
    Hpwl.total d.Design.nets d.Design.global
    /. float_of_int (Netlist.num_nets d.Design.nets)
  in
  let half_perim =
    float_of_int (d.Design.chip.Chip.num_sites + d.Design.chip.Chip.num_rows)
  in
  Alcotest.(check bool) "nets are local" true (mean_hpwl < half_perim /. 4.0)

let test_generate_named () =
  let inst = Generate.generate_named ~scale:0.005 "fft_a" in
  Alcotest.(check string) "name" "fft_a" inst.Generate.design.Design.name

let qc_reference_legal_any_seed =
  QCheck.Test.make ~count:15 ~name:"generate: reference legal for any seed"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.005 (Spec.find "fft_2"))
      in
      Legality.is_legal inst.Generate.design inst.Generate.reference)

let () =
  Alcotest.run "benchgen"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments ] );
      ( "spec",
        [ Alcotest.test_case "table 1 data" `Quick test_spec_table;
          Alcotest.test_case "scaling" `Quick test_spec_scaled ] );
      ( "generate",
        [ Alcotest.test_case "reference legal" `Quick test_reference_is_legal;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "density" `Quick test_density_close_to_spec;
          Alcotest.test_case "cell mix" `Quick test_cell_mix;
          Alcotest.test_case "single-height mode" `Quick test_single_height_mode;
          Alcotest.test_case "global in bounds" `Quick test_global_in_bounds;
          Alcotest.test_case "nets local" `Quick test_nets_are_local;
          Alcotest.test_case "generate_named" `Quick test_generate_named ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qc_reference_legal_any_seed ] ) ]
