(* Edge cases across the stack: degenerate designs, extreme geometry, and
   failure-injection paths that the main suites do not reach. *)

open Mclh_linalg
open Mclh_circuit
open Mclh_core

let cell ?rail ?name ~id ~w ~h () =
  Cell.make ~id ?name ~width:w ~height:h ?bottom_rail:rail ()

let design ?blockages ~chip ~cells ~xs ~ys () =
  Design.make ?blockages ~name:"edge" ~chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let flow_is_legal d =
  let legal = Flow.legalize d in
  Legality.is_legal d legal

(* ---------- degenerate designs ---------- *)

let test_single_cell () =
  let chip = Chip.make ~num_rows:2 ~num_sites:10 () in
  let d = design ~chip ~cells:[| cell ~id:0 ~w:3 ~h:1 () |] ~xs:[| 4.2 |] ~ys:[| 0.6 |] () in
  Alcotest.(check bool) "legal" true (flow_is_legal d);
  let legal = Flow.legalize d in
  (* a lone cell just snaps to the nearest site and row *)
  Alcotest.(check (float 0.0)) "x snapped" 4.0 legal.Placement.xs.(0);
  Alcotest.(check (float 0.0)) "y snapped" 1.0 legal.Placement.ys.(0)

let test_single_row_chip () =
  let chip = Chip.make ~num_rows:1 ~num_sites:30 () in
  let cells = Array.init 5 (fun id -> cell ~id ~w:4 ~h:1 ()) in
  let xs = [| 0.0; 3.0; 6.0; 9.0; 12.0 |] in
  let d = design ~chip ~cells ~xs ~ys:(Array.make 5 0.0) () in
  Alcotest.(check bool) "legal" true (flow_is_legal d)

let test_cell_fills_row_exactly () =
  let chip = Chip.make ~num_rows:2 ~num_sites:8 () in
  let d =
    design ~chip
      ~cells:[| cell ~id:0 ~w:8 ~h:1 (); cell ~id:1 ~w:8 ~h:1 () |]
      ~xs:[| 0.4; 0.0 |] ~ys:[| 0.0; 1.2 |] ()
  in
  Alcotest.(check bool) "legal" true (flow_is_legal d)

let test_chip_exactly_full () =
  (* 100% density: every site used; only one legal configuration per row *)
  let chip = Chip.make ~num_rows:2 ~num_sites:6 () in
  let cells =
    [| cell ~id:0 ~w:3 ~h:1 (); cell ~id:1 ~w:3 ~h:1 ();
       cell ~id:2 ~w:3 ~h:1 (); cell ~id:3 ~w:3 ~h:1 () |]
  in
  let d =
    design ~chip ~cells ~xs:[| 0.2; 3.1; 0.0; 2.8 |] ~ys:[| 0.0; 0.0; 1.0; 1.0 |] ()
  in
  Alcotest.(check bool) "legal at 100% density" true (flow_is_legal d)

let test_double_only_design () =
  let chip = Chip.make ~num_rows:4 ~num_sites:20 () in
  let cells =
    [| cell ~rail:Rail.Vss ~id:0 ~w:4 ~h:2 ();
       cell ~rail:Rail.Vdd ~id:1 ~w:4 ~h:2 ();
       cell ~rail:Rail.Vss ~id:2 ~w:4 ~h:2 () |]
  in
  let d =
    design ~chip ~cells ~xs:[| 1.0; 6.0; 11.0 |] ~ys:[| 0.3; 0.7; 1.9 |] ()
  in
  Alcotest.(check bool) "legal" true (flow_is_legal d)

let test_chip_sized_cell () =
  (* one cell as tall as the whole chip *)
  let chip = Chip.make ~num_rows:3 ~num_sites:10 () in
  let d =
    design ~chip ~cells:[| cell ~id:0 ~w:4 ~h:3 () |] ~xs:[| 2.5 |] ~ys:[| 0.4 |] ()
  in
  Alcotest.(check bool) "legal" true (flow_is_legal d)

let test_gp_positions_outside_chip () =
  (* global positions beyond the boundaries must still legalize (clamped) *)
  let chip = Chip.make ~num_rows:2 ~num_sites:12 () in
  let cells = [| cell ~id:0 ~w:3 ~h:1 (); cell ~id:1 ~w:3 ~h:1 () |] in
  let d = design ~chip ~cells ~xs:[| -5.0; 100.0 |] ~ys:[| -2.0; 9.0 |] () in
  Alcotest.(check bool) "legal" true (flow_is_legal d)

let test_identical_positions () =
  (* many cells stacked on the exact same global spot *)
  let chip = Chip.make ~num_rows:2 ~num_sites:40 () in
  let cells = Array.init 8 (fun id -> cell ~id ~w:4 ~h:1 ()) in
  let d =
    design ~chip ~cells ~xs:(Array.make 8 10.0) ~ys:(Array.make 8 0.5) ()
  in
  Alcotest.(check bool) "legal" true (flow_is_legal d);
  (* determinism under ties *)
  let l1 = Flow.legalize d and l2 = Flow.legalize d in
  Alcotest.(check bool) "deterministic" true (Placement.equal l1 l2)

(* ---------- blockage edge cases ---------- *)

let test_row_fully_blocked () =
  let chip = Chip.make ~num_rows:3 ~num_sites:10 () in
  let blockages = [| Blockage.make ~row:1 ~height:1 ~x:0 ~width:10 |] in
  let cells = [| cell ~id:0 ~w:3 ~h:1 (); cell ~id:1 ~w:3 ~h:1 () |] in
  (* both cells want the blocked row *)
  let d = design ~blockages ~chip ~cells ~xs:[| 1.0; 5.0 |] ~ys:[| 1.0; 1.2 |] () in
  Alcotest.(check bool) "legal despite blocked home row" true (flow_is_legal d)

let test_blockage_splits_row_tightly () =
  (* segments of width 3 on each side; cells exactly fill them *)
  let chip = Chip.make ~num_rows:1 ~num_sites:10 () in
  let blockages = [| Blockage.make ~row:0 ~height:1 ~x:3 ~width:4 |] in
  let cells = [| cell ~id:0 ~w:3 ~h:1 (); cell ~id:1 ~w:3 ~h:1 () |] in
  let d = design ~blockages ~chip ~cells ~xs:[| 4.0; 5.0 |] ~ys:[| 0.0; 0.0 |] () in
  let legal = Flow.legalize d in
  Alcotest.(check bool) "legal" true (Legality.is_legal d legal);
  (* one cell per side *)
  let left = Float.min legal.Placement.xs.(0) legal.Placement.xs.(1) in
  let right = Float.max legal.Placement.xs.(0) legal.Placement.xs.(1) in
  Alcotest.(check (float 0.0)) "left segment" 0.0 left;
  Alcotest.(check (float 0.0)) "right segment" 7.0 right

(* ---------- solver / numeric edges ---------- *)

let test_extreme_lambda () =
  let chip = Chip.make ~num_rows:2 ~num_sites:30 () in
  let cells =
    [| cell ~rail:Rail.Vss ~id:0 ~w:4 ~h:2 (); cell ~id:1 ~w:4 ~h:1 () |]
  in
  let d = design ~chip ~cells ~xs:[| 3.0; 4.0 |] ~ys:[| 0.0; 0.0 |] () in
  List.iter
    (fun lambda ->
      let config = { Config.default with lambda } in
      let legal = Flow.legalize ~config d in
      Alcotest.(check bool)
        (Printf.sprintf "legal at lambda %g" lambda)
        true (Legality.is_legal d legal))
    [ 1e-3; 1.0; 1e6 ]

let test_empty_constraint_set () =
  (* one cell per row: m = 0 and the bottom MMSIM block is empty *)
  let chip = Chip.make ~num_rows:3 ~num_sites:10 () in
  let cells = Array.init 3 (fun id -> cell ~id ~w:3 ~h:1 ()) in
  let d =
    design ~chip ~cells ~xs:[| 1.0; 2.0; 3.0 |] ~ys:[| 0.0; 1.0; 2.0 |] ()
  in
  let m = Model.build d (Row_assign.assign d) in
  Alcotest.(check int) "no constraints" 0 (Model.num_constraints m);
  let res = Solver.solve m in
  Alcotest.(check bool) "converged" true res.Solver.converged;
  Alcotest.(check bool) "x at targets" true
    (Vec.equal ~eps:1e-6 res.Solver.x (Vec.of_list [ 1.0; 2.0; 3.0 ]))

let test_solver_zero_iteration_budget_rejected () =
  let chip = Chip.make ~num_rows:1 ~num_sites:10 () in
  let d = design ~chip ~cells:[| cell ~id:0 ~w:2 ~h:1 () |] ~xs:[| 1.0 |] ~ys:[| 0.0 |] () in
  let m = Model.build d (Row_assign.assign d) in
  Alcotest.(check bool) "max_iter 0 rejected" true
    (try
       ignore (Solver.solve ~config:{ Config.default with max_iter = 0 } m);
       false
     with Invalid_argument _ -> true)

let test_warm_start_equals_plain_fixed_point () =
  (* both starts must reach the same snapped placement *)
  let inst = Mclh_benchgen.Generate.generate
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_1")) in
  let d = inst.Mclh_benchgen.Generate.design in
  let tight = { Config.default with eps = 1e-9; max_iter = 500_000 } in
  let with_ws = Flow.legalize ~config:tight d in
  let without_ws =
    Flow.legalize ~config:{ tight with warm_start = false } d
  in
  Alcotest.(check bool) "same legal placement" true
    (Placement.equal with_ws without_ws)

(* ---------- allocator edges ---------- *)

let test_tetris_alloc_requires_admitting_rows () =
  (* a double whose input row has the wrong parity is repaired *)
  let chip = Chip.make ~num_rows:4 ~num_sites:12 () in
  let cells = [| cell ~rail:Rail.Vss ~id:0 ~w:3 ~h:2 () |] in
  let d = design ~chip ~cells ~xs:[| 2.0 |] ~ys:[| 0.0 |] () in
  (* hand the allocator a rail-mismatched row (row 1 bottom is VDD) *)
  let bad = Placement.make ~xs:[| 2.0 |] ~ys:[| 1.0 |] in
  let out = Tetris_alloc.run d bad in
  Alcotest.(check bool) "repaired" true (Legality.is_legal d out.Tetris_alloc.placement);
  Alcotest.(check int) "was illegal" 1 out.Tetris_alloc.illegal_before

let test_occupancy_full_row_no_spot () =
  let chip = Chip.make ~num_rows:1 ~num_sites:6 () in
  let occ = Occupancy.create chip in
  Occupancy.occupy occ ~row:0 ~height:1 ~x:0 ~width:6;
  Alcotest.(check bool) "no spot anywhere" true
    (Occupancy.find_spot occ (cell ~id:0 ~w:2 ~h:1 ()) ~row0:0 ~x0:3 = None)

let test_order_preservation_empty () =
  let chip = Chip.make ~num_rows:2 ~num_sites:10 () in
  let d = design ~chip ~cells:[||] ~xs:[||] ~ys:[||] () in
  Alcotest.(check (float 0.0)) "vacuous preservation" 1.0
    (Order.preservation d (Placement.create 0))

let () =
  Alcotest.run "edge"
    [ ( "degenerate designs",
        [ Alcotest.test_case "single cell" `Quick test_single_cell;
          Alcotest.test_case "single-row chip" `Quick test_single_row_chip;
          Alcotest.test_case "cell fills row" `Quick test_cell_fills_row_exactly;
          Alcotest.test_case "100% density" `Quick test_chip_exactly_full;
          Alcotest.test_case "doubles only" `Quick test_double_only_design;
          Alcotest.test_case "chip-sized cell" `Quick test_chip_sized_cell;
          Alcotest.test_case "GP outside chip" `Quick test_gp_positions_outside_chip;
          Alcotest.test_case "identical positions" `Quick test_identical_positions ] );
      ( "blockage edges",
        [ Alcotest.test_case "fully blocked row" `Quick test_row_fully_blocked;
          Alcotest.test_case "tight segments" `Quick test_blockage_splits_row_tightly ] );
      ( "solver edges",
        [ Alcotest.test_case "extreme lambda" `Quick test_extreme_lambda;
          Alcotest.test_case "no constraints" `Quick test_empty_constraint_set;
          Alcotest.test_case "max_iter 0" `Quick test_solver_zero_iteration_budget_rejected;
          Alcotest.test_case "warm = plain fixed point" `Quick
            test_warm_start_equals_plain_fixed_point ] );
      ( "allocator edges",
        [ Alcotest.test_case "rail repair" `Quick test_tetris_alloc_requires_admitting_rows;
          Alcotest.test_case "full row" `Quick test_occupancy_full_row_no_spot;
          Alcotest.test_case "empty design metric" `Quick test_order_preservation_empty ] ) ]
