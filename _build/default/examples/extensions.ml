(* Beyond the paper's evaluation: taller cells, fixed blockages, and
   post-legalization wirelength refinement, all in one flow.

     dune exec examples/extensions.exe *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core

let () =
  (* an fft_2-shaped instance with 30% of the doubled cells regenerated as
     triple/quad height and 15% of the chip blocked by fixed macros *)
  let options =
    { Generate.default_options with
      tall_cell_fraction = 0.3;
      blockage_fraction = 0.15 }
  in
  let instance = Generate.generate ~options (Spec.scaled 0.02 (Spec.find "fft_2")) in
  let design = instance.Generate.design in
  Printf.printf "cells by height: %s\n"
    (Design.count_by_height design
    |> List.map (fun (h, c) -> Printf.sprintf "%d of height %d" c h)
    |> String.concat ", ");
  Printf.printf "blockages: %d (free capacity %d sites, density %.2f)\n\n"
    (Array.length design.Design.blockages)
    (Design.free_capacity design) (Design.density design);

  (* the MMSIM flow handles both: cells taller than two rows use the exact
     per-chain Schur path instead of the Sherman-Morrison closed form, and
     blockages shift each variable to its row-segment wall *)
  let result = Flow.run design in
  let legal = result.Flow.legal in
  assert (Legality.is_legal design legal);
  Printf.printf "legalized: %d MMSIM iterations, %d cells repaired by Tetris\n"
    result.Flow.solver.Solver.iterations
    (Flow.illegal_after_mmsim result);
  let rh = design.Design.chip.Chip.row_height in
  Printf.printf "displacement: %.1f sites\n"
    (Metrics.displacement ~row_height:rh ~before:design.Design.global legal)
      .Metrics.total_manhattan;

  (* detailed-placement refinement on top (the paper's cited follow-up
     direction): strictly HPWL-improving, legality-preserving *)
  let refined, stats = Mclh_refine.Refine.run design legal in
  assert (Legality.is_legal design refined);
  Printf.printf
    "refinement: HPWL %.0f -> %.0f (%.1f%% better; %d moves, %d swaps, %d reorders)\n"
    stats.Mclh_refine.Refine.hpwl_before stats.hpwl_after
    (100.0 *. Mclh_refine.Refine.improvement stats)
    stats.moves stats.swaps stats.reorders;

  Svg.write_file ~path:"extensions.svg" design refined;
  Printf.printf "layout with blockages written to extensions.svg\n"
