examples/quickstart.mli:
