examples/compare_legalizers.mli:
