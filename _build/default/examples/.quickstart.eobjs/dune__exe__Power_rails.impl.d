examples/power_rails.ml: Array Cell Chip Design Flow Legality List Mclh_circuit Mclh_core Netlist Placement Printf Rail Row_assign String
