examples/extensions.mli:
