examples/power_rails.mli:
