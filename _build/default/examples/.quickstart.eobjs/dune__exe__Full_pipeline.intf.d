examples/full_pipeline.mli:
