examples/quickstart.ml: Chip Design Flow Generate Hpwl Legality List Mclh_benchgen Mclh_circuit Mclh_core Metrics Order Printf Solver String Svg
