examples/extensions.ml: Array Chip Design Flow Generate Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_refine Metrics Printf Solver Spec String Svg
