examples/full_pipeline.ml: Chip Design Flow Generate Hpwl Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_gp Mclh_refine Metrics Netlist Printf Solver Svg
