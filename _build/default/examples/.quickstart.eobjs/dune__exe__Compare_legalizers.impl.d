examples/compare_legalizers.ml: Array Design Generate List Mclh_benchgen Mclh_circuit Mclh_core Mclh_report Metrics Order Printf Runner Sys Table
