examples/paper_example.ml: Array Blocks Cell Chip Config Csr Dense Design Flow Format Legality Mclh_circuit Mclh_core Mclh_lcp Mclh_linalg Mclh_qp Model Netlist Placement Rail Row_assign Solver Vec
