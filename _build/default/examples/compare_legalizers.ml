(* Compare every legalizer in the library on one benchmark — a miniature
   of the paper's Table 2.

     dune exec examples/compare_legalizers.exe [-- <benchmark> [scale]] *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core
open Mclh_report

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "des_perf_1" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.02
  in
  let instance = Generate.generate_named ~scale bench in
  let design = instance.Generate.design in
  Printf.printf "%s at scale %g: %d cells, density %.2f\n\n" bench scale
    (Design.num_cells design) (Design.density design);
  let table =
    Table.create
      [ { Table.title = "algorithm"; align = Table.Left };
        { title = "legal"; align = Right };
        { title = "disp (sites)"; align = Right };
        { title = "avg/cell"; align = Right };
        { title = "dHPWL"; align = Right };
        { title = "order kept"; align = Right };
        { title = "time (s)"; align = Right } ]
  in
  List.iter
    (fun alg ->
      let r = Runner.run alg design in
      Table.add_row table
        [ Runner.name alg;
          (if r.Runner.legal then "yes" else "NO");
          Table.fmt_int r.Runner.displacement.Metrics.total_manhattan;
          Table.fmt_float 3
            (Metrics.avg_manhattan r.Runner.displacement (Design.num_cells design));
          Table.fmt_pct 3 r.Runner.delta_hpwl;
          Table.fmt_float 4 (Order.preservation design r.Runner.placement);
          Table.fmt_float 3 r.Runner.runtime_s ])
    Runner.all;
  print_string (Table.render table);
  print_newline ()
