(* Quickstart: generate a small mixed-cell-height instance, legalize it
   with the paper's MMSIM flow, and inspect the result.

     dune exec examples/quickstart.exe *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core

let () =
  (* 1. a synthetic instance modeled on the paper's fft_2 benchmark,
        scaled down to ~650 cells *)
  let instance = Generate.generate_named ~scale:0.02 "fft_2" in
  let design = instance.Generate.design in
  Printf.printf "design %s: %d cells (%s), chip %d rows x %d sites\n"
    design.Design.name (Design.num_cells design)
    (Design.count_by_height design
    |> List.map (fun (h, c) -> Printf.sprintf "%d of height %d" c h)
    |> String.concat ", ")
    design.Design.chip.Chip.num_rows design.Design.chip.Chip.num_sites;

  (* 2. run the full flow: nearest-row alignment -> LCP -> MMSIM ->
        restore -> Tetris-like allocation *)
  let result = Flow.run design in
  Printf.printf "MMSIM: %d iterations, converged %b, subcell mismatch %.2e\n"
    result.Flow.solver.Solver.iterations result.Flow.solver.Solver.converged
    result.Flow.solver.Solver.mismatch;
  Printf.printf "illegal cells after MMSIM (fixed by Tetris stage): %d\n"
    (Flow.illegal_after_mmsim result);

  (* 3. verify and measure *)
  let legal = result.Flow.legal in
  assert (Legality.is_legal design legal);
  let rh = design.Design.chip.Chip.row_height in
  let disp = Metrics.displacement ~row_height:rh ~before:design.Design.global legal in
  Printf.printf "legal: yes\n";
  Printf.printf "total displacement: %.1f sites (avg %.2f per cell)\n"
    disp.Metrics.total_manhattan
    (Metrics.avg_manhattan disp (Design.num_cells design));
  Printf.printf "delta HPWL: %.3f%%\n"
    (100.0
    *. Hpwl.delta ~row_height:rh design.Design.nets ~before:design.Design.global legal);
  Printf.printf "cell order preserved: %.4f\n" (Order.preservation design legal);

  (* 4. render the layout (cells blue, displacement red, as Figure 5) *)
  Svg.write_file ~path:"quickstart.svg" design legal;
  Printf.printf "layout written to quickstart.svg\n"
