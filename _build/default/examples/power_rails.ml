(* Power-rail alignment (the paper's Figure 1 scenario).

   Three cells: A (single height, flippable), B (double height whose bottom
   boundary is designed for VSS), C (triple height, flippable). B can only
   sit on rows whose bottom rail is VSS — every other row — and no flip can
   fix a mismatch; A and C go anywhere they fit.

     dune exec examples/power_rails.exe *)

open Mclh_circuit
open Mclh_core

let () =
  let chip = Chip.make ~num_rows:6 ~num_sites:24 () in
  Printf.printf "chip: %d rows, bottom rail of row 0 is %s; rails alternate\n\n"
    chip.Chip.num_rows
    (Rail.to_string (Chip.bottom_rail chip 0));
  for r = 0 to chip.Chip.num_rows - 1 do
    Printf.printf "  row %d: bottom rail %s\n" r
      (Rail.to_string (Chip.bottom_rail chip r))
  done;

  let a = Cell.make ~id:0 ~name:"A" ~width:4 ~height:1 () in
  let b = Cell.make ~id:1 ~name:"B" ~width:5 ~height:2 ~bottom_rail:Rail.Vss () in
  let c = Cell.make ~id:2 ~name:"C" ~width:3 ~height:3 () in

  Printf.printf "\nadmissible rows per cell:\n";
  List.iter
    (fun (cell : Cell.t) ->
      let rows =
        List.init chip.Chip.num_rows (fun r -> r)
        |> List.filter (Chip.row_admits chip cell)
        |> List.map string_of_int |> String.concat " "
      in
      Printf.printf "  %-2s (%dx%d%s): rows { %s }\n" cell.Cell.name
        cell.Cell.width cell.Cell.height
        (match cell.Cell.bottom_rail with
        | Some rl -> ", bottom " ^ Rail.to_string rl
        | None -> ", flippable")
        rows)
    [ a; b; c ];

  (* global placement drops all three between rows; the legalizer must put
     B on a VSS row even though row 3 is nearer *)
  let design =
    Design.make ~name:"figure1" ~chip ~cells:[| a; b; c |]
      ~global:
        (Placement.make ~xs:[| 1.2; 7.6; 14.3 |] ~ys:[| 2.6; 2.7; 1.4 |])
      ~nets:(Netlist.empty ~num_cells:3) ()
  in
  let assignment = Row_assign.assign design in
  Printf.printf "\nnearest correct rows from global y = (2.6, 2.7, 1.4):\n";
  Array.iteri
    (fun i row ->
      Printf.printf "  %s -> row %d (bottom rail %s)\n"
        design.Design.cells.(i).Cell.name row
        (Rail.to_string (Chip.bottom_rail chip row)))
    assignment.Row_assign.rows;

  let legal = Flow.legalize design in
  Printf.printf "\nlegalized positions:\n";
  Array.iteri
    (fun i (cell : Cell.t) ->
      Printf.printf "  %s at (%.0f, %.0f)\n" cell.Cell.name
        legal.Placement.xs.(i) legal.Placement.ys.(i))
    design.Design.cells;
  assert (Legality.is_legal design legal);
  (* B landed on an even row (VSS parity) *)
  assert (int_of_float legal.Placement.ys.(1) mod 2 = 0);
  Printf.printf "\nall power rails aligned; B sits on a VSS row as required\n"
